#include "tune/tune.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/constants.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "common/vec3.hpp"
#include "grid/batch.hpp"
#include "grid/structure.hpp"
#include "mapping/synthetic_points.hpp"
#include "mapping/task_mapping.hpp"
#include "obs/metrics.hpp"
#include "parallel/machine_model.hpp"
#include "poisson/multipole.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace aeqp::tune {

namespace {

std::mutex g_mutex;
TuneConfig g_config;
bool g_loaded = false;

std::string hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (::gethostname(buf, sizeof(buf) - 1) == 0) return buf;
#endif
  return "unknown";
}

/// Scan `text` for `"key" : <number>` and return the number. The format is
/// our own flat JSON object, so a tolerant scanner beats a dependency.
bool find_number(const std::string& text, const std::string& key, double& out) {
  const std::string quoted = "\"" + key + "\"";
  std::size_t pos = text.find(quoted);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + quoted.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])))
    ++pos;
  std::size_t parsed = 0;
  double v = 0.0;
  try {
    v = std::stod(text.substr(pos), &parsed);
  } catch (...) {
    return false;
  }
  if (parsed == 0) return false;
  out = v;
  return true;
}

bool find_string(const std::string& text, const std::string& key, std::string& out) {
  const std::string quoted = "\"" + key + "\"";
  std::size_t pos = text.find(quoted);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + quoted.size());
  if (pos == std::string::npos) return false;
  const std::size_t open = text.find('"', pos);
  if (open == std::string::npos) return false;
  const std::size_t close = text.find('"', open + 1);
  if (close == std::string::npos) return false;
  out = text.substr(open + 1, close - open - 1);
  return true;
}

void load_from_env_locked() {
  g_loaded = true;
  const char* path = std::getenv("AEQP_TUNE_FILE");
  if (path == nullptr || *path == '\0') return;
  TuneConfig c;
  if (load_file(path, c)) {
    g_config = c;
    obs::counter("tune/file_loaded").increment();
    AEQP_LOG_INFO << "tune: loaded " << path << " (rho_block_size="
                  << c.rho_block_size << ", grid_batch_points="
                  << c.grid_batch_points << ", pack_window_bytes="
                  << c.pack_window_bytes << ")";
  } else {
    obs::counter("tune/file_rejected").increment();
    AEQP_LOG_WARN << "tune: ignoring " << path
                  << " (unreadable or version != " << kTuneFileVersion << ")";
  }
}

}  // namespace

const TuneConfig& config() {
  std::lock_guard lock(g_mutex);
  if (!g_loaded) load_from_env_locked();
  return g_config;
}

void set_config_for_testing(const TuneConfig& c) {
  std::lock_guard lock(g_mutex);
  g_config = c;
  g_loaded = true;
}

void reset_config_for_testing() {
  std::lock_guard lock(g_mutex);
  g_config = TuneConfig{};
  g_loaded = false;
}

std::size_t rho_block_size(std::size_t requested) {
  return requested != 0 ? requested : std::max<std::size_t>(1, config().rho_block_size);
}

std::size_t grid_batch_points(std::size_t requested) {
  return requested != 0 ? requested
                        : std::max<std::size_t>(1, config().grid_batch_points);
}

std::size_t pack_window_bytes(std::size_t requested) {
  return requested != 0 ? requested
                        : std::max<std::size_t>(1, config().pack_window_bytes);
}

std::string to_json(const TuneConfig& c) {
  std::ostringstream os;
  os << "{\n"
     << "  \"aeqp_tune_version\": " << kTuneFileVersion << ",\n"
     << "  \"machine\": \"" << c.machine << "\",\n"
     << "  \"rho_block_size\": " << c.rho_block_size << ",\n"
     << "  \"grid_batch_points\": " << c.grid_batch_points << ",\n"
     << "  \"pack_window_bytes\": " << c.pack_window_bytes << ",\n"
     << "  \"poisson_l_max\": " << c.poisson_l_max << "\n"
     << "}\n";
  return os.str();
}

bool parse_json(const std::string& text, TuneConfig& out) {
  double version = 0.0;
  if (!find_number(text, "aeqp_tune_version", version)) return false;
  if (static_cast<int>(version) != kTuneFileVersion) return false;
  TuneConfig c;
  double v = 0.0;
  if (find_number(text, "rho_block_size", v) && v >= 1.0)
    c.rho_block_size = static_cast<std::size_t>(v);
  if (find_number(text, "grid_batch_points", v) && v >= 1.0)
    c.grid_batch_points = static_cast<std::size_t>(v);
  if (find_number(text, "pack_window_bytes", v) && v >= 1.0)
    c.pack_window_bytes = static_cast<std::size_t>(v);
  if (find_number(text, "poisson_l_max", v) && v >= 0.0 && v <= 9.0)
    c.poisson_l_max = static_cast<int>(v);
  find_string(text, "machine", c.machine);
  out = c;
  return true;
}

bool load_file(const std::string& path, TuneConfig& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_json(buf.str(), out);
}

bool save_file(const std::string& path, const TuneConfig& c) {
  std::ofstream outf(path);
  if (!outf) return false;
  outf << to_json(c);
  return static_cast<bool>(outf);
}

namespace {

/// Inlined water geometry (bohr). tune sits below core in the module graph,
/// so it cannot use core::structures; the sweep only needs a realistic
/// few-atom workload, not the canonical one.
grid::Structure water_like() {
  grid::Structure s;
  s.add_atom(8, {0.0, 0.0, 0.0});
  s.add_atom(1, {0.0, 1.43, -1.11});
  s.add_atom(1, {0.0, -1.43, -1.11});
  return s;
}

/// Deterministic low-discrepancy point cloud around the molecule (additive
/// lattice on a ball); no RNG so repeated runs sweep identical work.
std::vector<Vec3> sweep_points(std::size_t n) {
  std::vector<Vec3> pts;
  pts.reserve(n);
  double a = 0.0, b = 0.0, c = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    a += 0.6180339887498949;  // additive recurrence, irrational steps
    b += 0.7548776662466927;
    c += 0.5698402909980532;
    const double u = a - std::floor(a);
    const double v = b - std::floor(b);
    const double w = c - std::floor(c);
    const double r = 6.0 * std::cbrt(u);
    const double ct = 2.0 * v - 1.0;
    const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
    const double phi = 2.0 * constants::pi * w;
    pts.push_back({r * st * std::cos(phi), r * st * std::sin(phi), r * ct});
  }
  return pts;
}

poisson::DensityFn gaussian_density(const grid::Structure& s) {
  return [s](const Vec3& p) {
    double n = 0.0;
    for (std::size_t a = 0; a < s.size(); ++a) {
      const double z = s.atom(a).z;
      const double r2 = (p - s.atom(a).pos).norm2();
      n += z * std::exp(-1.5 * r2);
    }
    return n;
  };
}

}  // namespace

AutotuneResult autotune() {
  AutotuneResult res;
  res.best.machine = hostname();
  std::ostringstream rep;
  rep << "autotune on " << res.best.machine << "\n";

  const grid::Structure mol = water_like();

  // --- rho_block_size: real potential_batch timing over block sizes. ---
  {
    poisson::PoissonSpec spec;
    const poisson::HartreeSolver solver(mol, spec);
    const auto v = solver.solve_density(gaussian_density(mol));
    const std::vector<Vec3> pts = sweep_points(6000);
    std::vector<double> out(pts.size(), 0.0);

    rep << "\nrho_block_size sweep (potential_batch, " << pts.size()
        << " points):\n";
    double best_rate = 0.0;
    for (const std::size_t block : {16u, 32u, 64u, 128u, 256u, 512u}) {
      Timer timer;
      int reps = 0;
      do {
        for (std::size_t b = 0; b < pts.size(); b += block) {
          const std::size_t e = std::min(pts.size(), b + block);
          solver.potential_batch(v, pts.data() + b, e - b, out.data() + b);
        }
        ++reps;
      } while (timer.seconds() < 0.05);
      const double rate =
          static_cast<double>(pts.size()) * reps / timer.seconds();
      rep << "  block " << block << ": " << static_cast<long>(rate)
          << " points/s\n";
      if (rate > best_rate) {
        best_rate = rate;
        res.best.rho_block_size = block;
      }
    }
    rep << "  -> rho_block_size = " << res.best.rho_block_size << "\n";
  }

  // --- grid_batch_points: load-imbalance objective on a synthetic chain
  //     (the mapper granularity trade-off of the ablation bench). ---
  {
    grid::Structure chain;
    for (int i = 0; i < 120; ++i) {
      const double x = 1.4 * i;
      const double y = (i % 2 == 0) ? 0.0 : 0.9;
      chain.add_atom(6, {x, y, 0.0});
    }
    const auto cloud = mapping::synthetic_point_cloud(chain, 48);
    const std::size_t ranks = 16;
    rep << "\ngrid_batch_points sweep (load imbalance, " << ranks
        << " ranks):\n";
    double best_obj = 1e300;
    for (const std::size_t target : {64u, 128u, 256u, 512u}) {
      const auto batches =
          grid::make_batches(cloud.positions, cloud.parent_atom, target);
      if (batches.size() < ranks) {
        rep << "  target " << target << ": fewer batches than ranks, skipped\n";
        continue;
      }
      const auto a = mapping::locality_enhancing_mapping(batches, ranks);
      const double imb = mapping::load_imbalance(a, batches);
      rep << "  target " << target << ": imbalance " << imb << "\n";
      if (imb < best_obj) {
        best_obj = imb;
        res.best.grid_batch_points = target;
      }
    }
    rep << "  -> grid_batch_points = " << res.best.grid_batch_points << "\n";
  }

  // --- pack_window_bytes: communication cost model sweep (Fig. 10 regime),
  //     capped at the paper's 30 MB staging limit. ---
  {
    const parallel::CommCostModel model(parallel::MachineModel::hpc2_amd());
    constexpr std::size_t kRowBytes = 16384;
    constexpr std::size_t kRows = 30002;
    constexpr std::size_t kRanks = 4096;
    rep << "\npack_window_bytes sweep (cost model, " << kRanks << " ranks):\n";
    double best_time = 1e300;
    for (const std::size_t pack : {8u, 32u, 128u, 512u, 1024u, 1920u}) {
      const std::size_t windows = (kRows + pack - 1) / pack;
      const double time =
          static_cast<double>(windows) *
          model.packed_allreduce_seconds(kRowBytes, pack, kRanks);
      rep << "  " << pack << " rows (" << (pack * kRowBytes) / (1 << 20)
          << " MB): " << time << " s\n";
      if (time < best_time) {
        best_time = time;
        res.best.pack_window_bytes = pack * kRowBytes;
      }
    }
    rep << "  -> pack_window_bytes = " << res.best.pack_window_bytes << "\n";
  }

  // --- poisson_l_max: producer cost per order, for the report only. The
  //     knob changes the physics, so the recommendation stays at the
  //     accuracy-gated default and is never applied implicitly. ---
  {
    rep << "\npoisson_l_max producer cost (projection + radial solve):\n";
    const auto density = gaussian_density(mol);
    for (const int lmax : {0, 2, 4, 6}) {
      poisson::PoissonSpec spec;
      spec.l_max = lmax;
      spec.radial_points = 64;
      const poisson::HartreeSolver solver(mol, spec);
      Timer timer;
      const auto v = solver.solve_density(density);
      rep << "  l_max " << lmax << ": " << timer.seconds() << " s, "
          << v.spline_bytes() / 1024 << " spline KB\n";
    }
    res.best.poisson_l_max = 4;
    rep << "  -> poisson_l_max = 4 (accuracy-gated default; see "
           "docs/performance.md)\n";
  }

  res.report = rep.str();
  return res;
}

}  // namespace aeqp::tune
