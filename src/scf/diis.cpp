#include "scf/diis.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "linalg/lu.hpp"
#include "resilience/guards.hpp"

namespace aeqp::scf {

using linalg::Matrix;
using linalg::Vector;

DiisMixer::DiisMixer(std::size_t max_history) : max_history_(max_history) {
  AEQP_CHECK(max_history_ >= 2, "DiisMixer: history must hold at least 2 entries");
}

Matrix DiisMixer::residual(const Matrix& h, const Matrix& p, const Matrix& s) {
  // e = H P S - S P H; antisymmetric, zero at self-consistency.
  const Matrix hp = linalg::matmul(h, p);
  const Matrix sp = linalg::matmul(s, p);
  Matrix e = linalg::matmul(hp, s);
  e.axpy(-1.0, linalg::matmul(sp, h));
  return e;
}

void DiisMixer::reset() {
  history_.clear();
  last_residual_norm_ = 0.0;
}

std::vector<std::pair<Matrix, Matrix>> DiisMixer::export_history() const {
  std::vector<std::pair<Matrix, Matrix>> out;
  out.reserve(history_.size());
  for (const Entry& entry : history_) out.emplace_back(entry.h, entry.e);
  return out;
}

void DiisMixer::import_history(
    std::vector<std::pair<Matrix, Matrix>> history) {
  history_.clear();
  const std::size_t skip =
      history.size() > max_history_ ? history.size() - max_history_ : 0;
  for (std::size_t i = skip; i < history.size(); ++i)
    history_.push_back(
        Entry{std::move(history[i].first), std::move(history[i].second)});
  last_residual_norm_ = history_.empty() ? 0.0 : history_.back().e.max_abs();
}

Matrix DiisMixer::extrapolate(const Matrix& h, const Matrix& p, const Matrix& s) {
  // A single non-finite entry admitted to the history poisons every later
  // extrapolation (the B-matrix dots touch all stored residuals), so refuse
  // corrupt input at the door instead of letting it spread.
  if (resilience::guards_enabled()) {
    resilience::guard_finite(h, "diis/h");
    resilience::guard_finite(p, "diis/p");
  }
  Entry entry{h, residual(h, p, s)};
  if (resilience::guards_enabled())
    resilience::guard_finite(entry.e, "diis/residual");
  last_residual_norm_ = entry.e.max_abs();
  history_.push_back(std::move(entry));
  if (history_.size() > max_history_) history_.pop_front();
  const std::size_t m = history_.size();
  if (m < 2) return h;

  // Bordered Lagrange system: minimize |sum c_i e_i|^2 with sum c_i = 1.
  Matrix b(m + 1, m + 1);
  Vector rhs(m + 1, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      double dot = 0.0;
      const Matrix& ei = history_[i].e;
      const Matrix& ej = history_[j].e;
      for (std::size_t k = 0; k < ei.rows() * ei.cols(); ++k)
        dot += ei.data()[k] * ej.data()[k];
      b(i, j) = dot;
    }
    b(i, m) = -1.0;
    b(m, i) = -1.0;
  }
  rhs[m] = -1.0;

  Vector coeff;
  try {
    coeff = linalg::solve_linear(b, rhs);
  } catch (const Error&) {
    // Ill-conditioned subspace: drop the oldest entries and carry on.
    AEQP_LOG_DEBUG << "DIIS B-matrix singular; resetting history";
    Entry latest = history_.back();
    history_.clear();
    history_.push_back(std::move(latest));
    return h;
  }

  Matrix mixed(h.rows(), h.cols());
  for (std::size_t i = 0; i < m; ++i) mixed.axpy(coeff[i], history_[i].h);
  return mixed;
}

}  // namespace aeqp::scf
