#include "scf/occupations.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "scf/scf_solver.hpp"

namespace aeqp::scf {
namespace {

double total_filling(const linalg::Vector& eigs, double mu, double sigma) {
  double n = 0.0;
  for (double e : eigs) {
    const double x = (e - mu) / sigma;
    // Guard exp overflow far from the Fermi level.
    if (x > 40.0)
      continue;
    else if (x < -40.0)
      n += 2.0;
    else
      n += 2.0 / (1.0 + std::exp(x));
  }
  return n;
}

}  // namespace

double fermi_level(const linalg::Vector& eigenvalues, int n_electrons,
                   double sigma) {
  AEQP_CHECK(!eigenvalues.empty(), "fermi_level: empty spectrum");
  AEQP_CHECK(sigma > 0.0, "fermi_level: sigma must be positive");
  AEQP_CHECK(n_electrons >= 0 &&
                 n_electrons <= static_cast<int>(2 * eigenvalues.size()),
             "fermi_level: electron count outside basis capacity");
  double lo = eigenvalues.front() - 50.0 * sigma - 1.0;
  double hi = eigenvalues.back() + 50.0 * sigma + 1.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (total_filling(eigenvalues, mid, sigma) <
        static_cast<double>(n_electrons))
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

linalg::Vector fermi_occupations(const linalg::Vector& eigenvalues,
                                 int n_electrons, double sigma) {
  if (sigma <= 0.0) return aufbau_occupations(eigenvalues.size(), n_electrons);
  const double mu = fermi_level(eigenvalues, n_electrons, sigma);
  linalg::Vector f(eigenvalues.size());
  for (std::size_t p = 0; p < f.size(); ++p) {
    const double x = (eigenvalues[p] - mu) / sigma;
    if (x > 40.0)
      f[p] = 0.0;
    else if (x < -40.0)
      f[p] = 2.0;
    else
      f[p] = 2.0 / (1.0 + std::exp(x));
  }
  return f;
}

}  // namespace aeqp::scf
