#pragma once

/// \file occupations.hpp
/// Orbital occupation schemes. The paper's Eq. (3) populates states with
/// the Fermi-Dirac distribution f_i; at sigma -> 0 this reduces to the
/// aufbau filling used for gapped molecules.

#include "linalg/matrix.hpp"

namespace aeqp::scf {

/// Fermi-Dirac occupations: f_p = 2 / (1 + exp((eps_p - mu)/sigma)), with
/// the chemical potential mu determined by bisection so that
/// sum_p f_p = n_electrons. `sigma` is the electronic temperature in
/// hartree; sigma <= 0 falls back to aufbau filling.
linalg::Vector fermi_occupations(const linalg::Vector& eigenvalues,
                                 int n_electrons, double sigma);

/// The chemical potential found for the given spectrum/filling.
double fermi_level(const linalg::Vector& eigenvalues, int n_electrons,
                   double sigma);

}  // namespace aeqp::scf
