#pragma once

/// \file scf_solver.hpp
/// Ground-state Kohn-Sham DFT (paper Sec. 2.1, Eqs. 1-6): the "DFT phase"
/// that supplies eigenstates C, eigenvalues eps and the ground density to
/// the DFPT phase. Closed-shell, LDA, all-electron numeric atomic orbitals.

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "basis/basis_set.hpp"
#include "common/vec3.hpp"
#include "grid/molecular_grid.hpp"
#include "grid/structure.hpp"
#include "linalg/matrix.hpp"
#include "poisson/multipole.hpp"
#include "scf/integrator.hpp"

namespace aeqp::scf {

/// Self-consistency acceleration scheme.
enum class Mixer {
  Linear,  ///< damped density-matrix mixing (robust default)
  Diis,    ///< Pulay DIIS on the Hamiltonian (faster near convergence)
};

class DiisMixer;

/// Snapshot handed to an ScfObserver at the end of every SCF iteration
/// (after mixing; the density matrix and residual are final for the
/// iteration, the convergence test has not run yet).
struct ScfIterationState {
  int iteration = 0;
  double delta = 0.0;    ///< max |n_out - n_in| of this iteration
  double energy = 0.0;   ///< total energy of this iteration
  const linalg::Matrix* density_matrix = nullptr;
  const DiisMixer* mixer = nullptr;  ///< DIIS state (always non-null)
};

/// Observer verdict; Abort ends the cycle (result reports converged=false).
enum class ScfAction { Continue, Abort };

/// Per-iteration hook (health validation, checkpointing).
using ScfObserver = std::function<ScfAction(const ScfIterationState&)>;

/// Resume point for an SCF cycle: the mixed density matrix after
/// `iteration` completed iterations plus the DIIS history (empty for the
/// linear mixer). The grid density and density functor are recomputed from
/// the density matrix, which reproduces the uninterrupted trajectory
/// bit-for-bit.
struct ScfWarmStart {
  int iteration = 0;
  linalg::Matrix density_matrix;
  /// (Hamiltonian, residual) pairs, oldest first, as exported by
  /// DiisMixer::export_history().
  std::vector<std::pair<linalg::Matrix, linalg::Matrix>> diis_history;
};

/// SCF configuration. Defaults are the "light" settings of the evaluation.
struct ScfOptions {
  basis::BasisTier tier = basis::BasisTier::Light;
  double r_cut = 7.0;                 ///< orbital confinement radius (bohr)
  grid::GridSpec grid;                ///< integration grid
  poisson::PoissonSpec poisson;       ///< Hartree solver settings
  int max_iterations = 80;
  double density_tolerance = 1e-6;    ///< max |n_out - n_in| convergence test
  double mixing = 0.35;               ///< linear density-matrix mixing factor
  Mixer mixer = Mixer::Linear;        ///< acceleration scheme
  std::size_t diis_history = 8;       ///< stored Hamiltonians for DIIS
  /// Fermi-Dirac smearing width in hartree (paper Eq. 3); 0 = aufbau.
  double smearing_sigma = 0.0;
  Vec3 external_field{};              ///< homogeneous E-field (FD validation)
  /// Cutoff-screening threshold for the batched density evaluation feeding
  /// the Hartree solve; 0 disables (bit-identical to unscreened). See
  /// DfptOptions::screening_threshold and docs/performance.md.
  double screening_threshold = 1e-12;
  /// Grid points per potential_batch block in the Hartree loop; 0 = tuned.
  std::size_t rho_block_size = 0;
  bool verbose = false;
  /// Per-iteration hook for health validation and checkpointing; may abort
  /// the cycle. Null = no observation.
  ScfObserver observer;
  /// Resume from a previous iteration's state instead of from scratch.
  std::shared_ptr<const ScfWarmStart> warm_start;
};

/// Converged ground state plus the machinery DFPT reuses.
/// Breakdown of the converged total energy (paper Eq. 1's terms).
struct EnergyComponents {
  double kinetic = 0.0;        ///< T_s = Tr(P T)
  double external = 0.0;       ///< E_ext = Tr(P V_nuc)
  double hartree = 0.0;        ///< E_H = 1/2 \int n v_H
  double xc = 0.0;             ///< E_xc = \int n e_xc
  double nuclear = 0.0;        ///< E_nuc-nuc
  [[nodiscard]] double total() const {
    return kinetic + external + hartree + xc + nuclear;
  }
};

struct ScfResult {
  bool converged = false;
  int iterations = 0;
  double total_energy = 0.0;
  EnergyComponents components;  ///< Eq. (1) decomposition
  double homo = 0.0, lumo = 0.0;

  linalg::Vector eigenvalues;
  linalg::Matrix coefficients;    ///< C, columns are orbitals (Eq. 4)
  linalg::Matrix density_matrix;  ///< P of Eq. 6
  linalg::Matrix overlap;         ///< S
  linalg::Matrix hamiltonian;     ///< converged H
  linalg::Vector occupations;     ///< f_p per orbital
  int n_occupied = 0;             ///< orbitals with nonzero occupation

  std::vector<double> density_samples;  ///< n(r) on the grid
  Vec3 dipole{};                        ///< electronic dipole \int r n dV

  // Shared machinery (basis/grid/integrator/Hartree) for the DFPT phase.
  std::shared_ptr<const basis::BasisSet> basis;
  std::shared_ptr<const grid::MolecularGrid> grid;
  std::shared_ptr<const BatchIntegrator> integrator;
  std::shared_ptr<const poisson::HartreeSolver> hartree;
};

/// Self-consistent field driver.
class ScfSolver {
public:
  ScfSolver(const grid::Structure& structure, ScfOptions options);

  /// Run to self-consistency; throws on non-convergence only if the caller
  /// asked for strict mode via options (result.converged reports status).
  [[nodiscard]] ScfResult run() const;

private:
  grid::Structure structure_;
  ScfOptions options_;
};

/// Build the density matrix P = C f C^T restricted to occupied columns
/// (paper Eq. 6).
linalg::Matrix density_matrix_from_orbitals(const linalg::Matrix& c,
                                            const linalg::Vector& occupations);

/// Closed-shell occupations: 2 per orbital, fractional HOMO for odd counts.
linalg::Vector aufbau_occupations(std::size_t n_orbitals, int n_electrons);

}  // namespace aeqp::scf
