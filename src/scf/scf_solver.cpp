#include "scf/scf_solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "exec/thread_pool.hpp"
#include "linalg/eigen.hpp"
#include "obs/trace.hpp"
#include "resilience/guards.hpp"
#include "scf/diis.hpp"
#include "scf/occupations.hpp"
#include "tune/tune.hpp"
#include "xc/lda.hpp"

namespace aeqp::scf {

using linalg::Matrix;
using linalg::Vector;

linalg::Vector aufbau_occupations(std::size_t n_orbitals, int n_electrons) {
  AEQP_CHECK(n_electrons >= 0, "aufbau_occupations: negative electron count");
  AEQP_CHECK(static_cast<std::size_t>((n_electrons + 1) / 2) <= n_orbitals,
             "aufbau_occupations: basis too small for the electron count");
  Vector f(n_orbitals, 0.0);
  int remaining = n_electrons;
  for (std::size_t i = 0; i < n_orbitals && remaining > 0; ++i) {
    const double occ = std::min(2, remaining);
    f[i] = occ;
    remaining -= static_cast<int>(occ);
  }
  return f;
}

Matrix density_matrix_from_orbitals(const Matrix& c, const Vector& occupations) {
  const std::size_t nb = c.rows();
  AEQP_CHECK(occupations.size() == c.cols(), "density matrix: occupation mismatch");
  Matrix p(nb, nb);
  // Row-parallel: each worker owns whole rows of P, and the orbital
  // accumulation order inside a row matches the serial loop, so the result
  // is bit-identical for every thread count.
  exec::parallel_for_ranges(0, nb, 8, [&](std::size_t mb, std::size_t me) {
    for (std::size_t mu = mb; mu < me; ++mu) {
      double* prow = p.data() + mu * nb;
      for (std::size_t i = 0; i < occupations.size(); ++i) {
        const double f = occupations[i];
        if (f == 0.0) continue;
        const double cf = f * c(mu, i);
        if (cf == 0.0) continue;
        for (std::size_t nu = 0; nu < nb; ++nu) prow[nu] += cf * c(nu, i);
      }
    }
  });
  return p;
}

ScfSolver::ScfSolver(const grid::Structure& structure, ScfOptions options)
    : structure_(structure), options_(std::move(options)) {
  AEQP_CHECK(structure_.size() > 0, "ScfSolver: empty structure");
}

ScfResult ScfSolver::run() const {
  AEQP_TRACE_SCOPE("scf/run");
  ScfResult res;
  auto basis = std::make_shared<const basis::BasisSet>(structure_, options_.tier,
                                                       options_.r_cut);
  auto grid = std::make_shared<const grid::MolecularGrid>(
      grid::MolecularGrid::build(structure_, options_.grid));
  auto integ = std::make_shared<const BatchIntegrator>(basis, grid);
  auto hartree =
      std::make_shared<const poisson::HartreeSolver>(structure_, options_.poisson);

  const std::size_t nb = basis->size();
  const std::size_t np = grid->size();
  const int n_electrons = basis->electron_count();

  const Matrix s = integ->overlap();
  const Matrix t = integ->kinetic();
  const Matrix v_ext = integ->external_potential();
  Matrix h_core = t;
  h_core.axpy(1.0, v_ext);
  // Homogeneous external field: -xi . r enters the one-electron Hamiltonian
  // (paper Eq. 11's bare perturbation), used by finite-difference checks.
  for (int axis = 0; axis < 3; ++axis) {
    const double xi = options_.external_field[axis];
    if (xi != 0.0) h_core.axpy(-xi, integ->dipole_matrix(axis));
  }

  // Per-atom screening radii for the batched density evaluation (geometry +
  // threshold only, so screening is thread/rank deterministic).
  const std::vector<double> screen =
      basis->screening_radii(options_.screening_threshold);

  // Initial density: superposition of spherical free atoms, as a batched
  // callback (the Hartree projection hands whole angular rings at once).
  poisson::BatchDensityFn density_fn = [&](const Vec3* pts, std::size_t m,
                                           double* outp) {
    for (std::size_t k = 0; k < m; ++k) {
      double n = 0.0;
      for (const auto& a : structure_.atoms()) {
        const double r = distance(pts[k], a.pos);
        if (r < basis->r_cut()) n += basis->free_atom_density(a.z, r);
      }
      outp[k] = n;
    }
  };

  Matrix p_mat;  // density matrix of the current iteration (empty initially)
  std::vector<double> n_samples(np, 0.0);
  exec::parallel_for_ranges(0, np, 64, [&](std::size_t b, std::size_t e) {
    thread_local std::vector<Vec3> ppos;
    ppos.resize(e - b);
    for (std::size_t i = b; i < e; ++i) ppos[i - b] = grid->point(i).pos;
    density_fn(ppos.data(), e - b, n_samples.data() + b);
  });

  // Density functor bound to the current density matrix; rebuilt after every
  // mixing step and on warm start (identical construction keeps a resumed
  // trajectory bit-for-bit equal to an uninterrupted one).
  const auto rebuild_density_fn = [&]() {
    density_fn = [basis, screen, p = p_mat](const Vec3* pts, std::size_t m,
                                            double* outp) {
      thread_local basis::BatchEval ev;
      basis->evaluate_batch(pts, m, screen, ev);
      basis::contract_density(p, ev, outp);
    };
  };

  Vector occ;
  double e_total = 0.0;
  bool converged = false;
  int iter = 0;
  DiisMixer diis(options_.diis_history);

  int start_iteration = 0;
  if (options_.warm_start) {
    const auto& ws = *options_.warm_start;
    AEQP_CHECK(ws.density_matrix.rows() == nb && ws.density_matrix.cols() == nb,
               "ScfSolver: warm start density matrix has wrong dimensions");
    AEQP_CHECK(ws.iteration >= 1 && ws.iteration < options_.max_iterations,
               "ScfSolver: warm start iteration outside (0, max_iterations)");
    p_mat = ws.density_matrix;
    // The grid density and functor are derived state: recompute them from
    // the density matrix exactly as the iteration body does.
    n_samples = integ->density(p_mat);
    rebuild_density_fn();
    diis.import_history(ws.diis_history);
    start_iteration = ws.iteration;
  }

  for (iter = start_iteration + 1; iter <= options_.max_iterations; ++iter) {
    AEQP_TRACE_SCOPE("scf/iteration");
    obs::PhaseSpan phase_span;
    // Hartree potential of the current density (multipole Poisson solve).
    phase_span.begin("scf/hartree");
    const auto v_part = hartree->solve_density(density_fn);
    std::vector<double> v_eff(np), v_h(np), v_xc(np), exc(np);
    // The Sumup analogue of the SCF cycle: every point evaluates the
    // partitioned potential independently, interpolated block by block
    // through the bundled consumer kernel (block size is pure cache tuning
    // and never changes v_h).
    const std::size_t block = tune::rho_block_size(options_.rho_block_size);
    exec::parallel_for_ranges(0, np, block, [&](std::size_t b, std::size_t e) {
      thread_local std::vector<Vec3> ppos;
      ppos.resize(e - b);
      for (std::size_t i = b; i < e; ++i) ppos[i - b] = grid->point(i).pos;
      hartree->potential_batch(v_part, ppos.data(), e - b, v_h.data() + b);
      for (std::size_t i = b; i < e; ++i) {
        const xc::LdaPoint ldap = xc::lda_evaluate(std::max(n_samples[i], 0.0));
        v_xc[i] = ldap.vxc;
        exc[i] = ldap.exc;
        v_eff[i] = v_h[i] + v_xc[i];
      }
    });

    phase_span.begin("scf/hamiltonian");
    Matrix h = h_core;
    h.axpy(1.0, integ->potential_matrix(v_eff));
    h.symmetrize();
    // Phase-boundary guard: a corrupted integral poisons every eigenpair
    // downstream, so validate the Hamiltonian before diagonalization.
    resilience::guard_hermitian(h, "scf/h");

    // DIIS extrapolates the Hamiltonian from the residual history.
    if (options_.mixer == Mixer::Diis && !p_mat.empty()) {
      h = diis.extrapolate(h, p_mat, s);
      h.symmetrize();
    }

    phase_span.begin("scf/diagonalize");
    const linalg::EigenSolution sol = linalg::generalized_symmetric_eigen(h, s);
    phase_span.begin("scf/density");
    occ = fermi_occupations(sol.eigenvalues, n_electrons, options_.smearing_sigma);
    Matrix p_new = density_matrix_from_orbitals(sol.eigenvectors, occ);

    // Linear density-matrix mixing (DIIS handles damping itself, but a few
    // damped start-up cycles keep it out of trouble).
    const bool damp = options_.mixer == Mixer::Linear || iter <= 2;
    if (!p_mat.empty() && damp) {
      p_new.scale(options_.mixing);
      p_new.axpy(1.0 - options_.mixing, p_mat);
    }
    const std::vector<double> n_new = integ->density(p_new);

    double delta = 0.0;
    for (std::size_t i = 0; i < np; ++i)
      delta = std::max(delta, std::fabs(n_new[i] - n_samples[i]));

    p_mat = std::move(p_new);
    n_samples = n_new;
    rebuild_density_fn();
    // Physics invariants at the density boundary: P finite, and the grid
    // density still integrates to the electron count (a struck density
    // matrix element shifts the norm far outside quadrature error).
    if (resilience::guards_enabled()) {
      resilience::guard_finite(p_mat, "scf/p");
      double integrated = 0.0;
      for (std::size_t i = 0; i < np; ++i)
        integrated += grid->point(i).weight * n_samples[i];
      resilience::guard_electron_count(integrated,
                                       static_cast<double>(n_electrons),
                                       "scf/density");
    }
    phase_span.end();

    // Total energy from the eigenvalue sum with double-counting corrections:
    // E = sum_i f_i eps_i - E_H - \int v_xc n + E_xc + E_nn.
    double band = 0.0;
    for (std::size_t i = 0; i < nb; ++i) band += occ[i] * sol.eigenvalues[i];
    double e_h = 0.0, e_vxc = 0.0, e_xc = 0.0;
    for (std::size_t i = 0; i < np; ++i) {
      const double w = grid->point(i).weight;
      e_h += 0.5 * w * n_samples[i] * v_h[i];
      e_vxc += w * n_samples[i] * v_xc[i];
      e_xc += w * n_samples[i] * exc[i];
    }
    e_total = band - e_h - e_vxc + e_xc + structure_.nuclear_repulsion();

    // Eq. (1) decomposition of the same state (stale by one mixing step
    // away from convergence, identical at the fixed point).
    res.components.kinetic = linalg::trace_product(p_mat, t);
    res.components.external = linalg::trace_product(p_mat, v_ext);
    res.components.hartree = e_h;
    res.components.xc = e_xc;
    res.components.nuclear = structure_.nuclear_repulsion();

    if (options_.verbose)
      AEQP_LOG_INFO << "SCF iter " << iter << " E=" << e_total
                    << " max|dn|=" << delta;

    res.eigenvalues = sol.eigenvalues;
    res.coefficients = sol.eigenvectors;
    res.hamiltonian = h;
    if (options_.observer) {
      const ScfIterationState state{iter, delta, e_total, &p_mat, &diis};
      if (options_.observer(state) == ScfAction::Abort) break;
    }
    if (delta < options_.density_tolerance) {
      converged = true;
      break;
    }
  }

  res.converged = converged;
  res.iterations = std::min(iter, options_.max_iterations);
  res.total_energy = e_total;
  res.density_matrix = p_mat;
  res.overlap = s;
  res.occupations = occ;
  res.n_occupied = 0;
  for (double f : occ) res.n_occupied += (f > 1e-6);  // smearing-tolerant
  if (res.n_occupied > 0 && static_cast<std::size_t>(res.n_occupied) < nb) {
    res.homo = res.eigenvalues[res.n_occupied - 1];
    res.lumo = res.eigenvalues[res.n_occupied];
  }
  res.density_samples = n_samples;
  for (int axis = 0; axis < 3; ++axis)
    res.dipole[axis] = integ->moment(n_samples, axis);
  res.basis = basis;
  res.grid = grid;
  res.integrator = integ;
  res.hartree = hartree;
  return res;
}

}  // namespace aeqp::scf
