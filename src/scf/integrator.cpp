#include "scf/integrator.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aeqp::scf {

using linalg::Matrix;

BatchIntegrator::BatchIntegrator(std::shared_ptr<const basis::BasisSet> basis,
                                 std::shared_ptr<const grid::MolecularGrid> grid)
    : basis_(std::move(basis)), grid_(std::move(grid)) {
  AEQP_CHECK(basis_ && grid_, "BatchIntegrator: null basis or grid");
  const std::size_t np = grid_->size();
  offsets_.assign(np + 1, 0);
  basis::PointEval ev;
  for (std::size_t p = 0; p < np; ++p) {
    basis_->evaluate(grid_->point(p).pos, /*with_laplacian=*/true, ev);
    offsets_[p + 1] = offsets_[p] + static_cast<std::uint32_t>(ev.indices.size());
    indices_.insert(indices_.end(), ev.indices.begin(), ev.indices.end());
    values_.insert(values_.end(), ev.values.begin(), ev.values.end());
    laplacians_.insert(laplacians_.end(), ev.laplacians.begin(),
                       ev.laplacians.end());
  }
}

template <typename Getter>
Matrix BatchIntegrator::accumulate_weighted(Getter&& point_factor,
                                            bool use_laplacian) const {
  const std::size_t nb = basis_->size();
  Matrix m(nb, nb);
  for (std::size_t p = 0; p < grid_->size(); ++p) {
    const double f = point_factor(p);
    if (f == 0.0) continue;
    const double w = grid_->point(p).weight * f;
    const std::uint32_t begin = offsets_[p], end = offsets_[p + 1];
    for (std::uint32_t i = begin; i < end; ++i) {
      const std::uint32_t mu = indices_[i];
      const double xi = values_[i] * w;
      for (std::uint32_t j = begin; j < end; ++j) {
        const double yj = use_laplacian ? laplacians_[j] : values_[j];
        m(mu, indices_[j]) += xi * yj;
      }
    }
  }
  return m;
}

Matrix BatchIntegrator::overlap() const {
  return accumulate_weighted([](std::size_t) { return 1.0; }, false);
}

Matrix BatchIntegrator::kinetic() const {
  Matrix t = accumulate_weighted([](std::size_t) { return -0.5; }, true);
  // The asymmetric grid estimate of <mu|nabla^2|nu> is symmetrized, the
  // standard practice for NAO grid integration (FHI-aims does the same).
  t.symmetrize();
  return t;
}

Matrix BatchIntegrator::external_potential() const {
  const auto& atoms = basis_->structure().atoms();
  return accumulate_weighted(
      [&](std::size_t p) {
        const Vec3 pos = grid_->point(p).pos;
        double v = 0.0;
        for (const auto& a : atoms) {
          const double r = distance(pos, a.pos);
          v += -static_cast<double>(a.z) / std::max(r, 1e-10);
        }
        return v;
      },
      false);
}

Matrix BatchIntegrator::potential_matrix(std::span<const double> v_samples) const {
  AEQP_CHECK(v_samples.size() == grid_->size(),
             "potential_matrix: sample count mismatch");
  return accumulate_weighted([&](std::size_t p) { return v_samples[p]; }, false);
}

Matrix BatchIntegrator::dipole_matrix(int axis) const {
  AEQP_CHECK(axis >= 0 && axis < 3, "dipole_matrix: axis must be 0..2");
  return accumulate_weighted(
      [&](std::size_t p) { return grid_->point(p).pos[axis]; }, false);
}

std::vector<double> BatchIntegrator::density(const Matrix& p_mat) const {
  const std::size_t nb = basis_->size();
  AEQP_CHECK(p_mat.rows() == nb && p_mat.cols() == nb,
             "density: density matrix shape mismatch");
  std::vector<double> n(grid_->size(), 0.0);
  for (std::size_t p = 0; p < grid_->size(); ++p) {
    const std::uint32_t begin = offsets_[p], end = offsets_[p + 1];
    double acc = 0.0;
    for (std::uint32_t i = begin; i < end; ++i) {
      const std::uint32_t mu = indices_[i];
      const double* prow = p_mat.data() + mu * nb;
      double row = 0.0;
      for (std::uint32_t j = begin; j < end; ++j)
        row += prow[indices_[j]] * values_[j];
      acc += values_[i] * row;
    }
    n[p] = acc;
  }
  return n;
}

double BatchIntegrator::moment(std::span<const double> samples, int axis) const {
  AEQP_CHECK(samples.size() == grid_->size(), "moment: sample count mismatch");
  AEQP_CHECK(axis >= 0 && axis < 3, "moment: axis must be 0..2");
  double s = 0.0;
  for (std::size_t p = 0; p < grid_->size(); ++p)
    s += grid_->point(p).weight * grid_->point(p).pos[axis] * samples[p];
  return s;
}

double BatchIntegrator::integrate(std::span<const double> samples) const {
  AEQP_CHECK(samples.size() == grid_->size(), "integrate: sample count mismatch");
  double s = 0.0;
  for (std::size_t p = 0; p < grid_->size(); ++p)
    s += grid_->point(p).weight * samples[p];
  return s;
}

std::size_t BatchIntegrator::active_points() const {
  std::size_t n = 0;
  for (std::size_t p = 0; p < grid_->size(); ++p)
    n += (offsets_[p + 1] > offsets_[p]);
  return n;
}

}  // namespace aeqp::scf
