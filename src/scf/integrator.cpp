#include "scf/integrator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "exec/thread_pool.hpp"

namespace aeqp::scf {

using linalg::Matrix;

namespace {
/// Points per accumulation tile. Comparable to the paper's batch sizes
/// (100-300 points); small enough to keep the dense local blocks in cache
/// and to load-balance across the pool.
constexpr std::size_t kTilePoints = 128;
}  // namespace

BatchIntegrator::BatchIntegrator(std::shared_ptr<const basis::BasisSet> basis,
                                 std::shared_ptr<const grid::MolecularGrid> grid)
    : basis_(std::move(basis)), grid_(std::move(grid)) {
  AEQP_CHECK(basis_ && grid_, "BatchIntegrator: null basis or grid");
  const std::size_t np = grid_->size();
  offsets_.assign(np + 1, 0);
  basis::PointEval ev;
  for (std::size_t p = 0; p < np; ++p) {
    basis_->evaluate(grid_->point(p).pos, /*with_laplacian=*/true, ev);
    offsets_[p + 1] = offsets_[p] + static_cast<std::uint32_t>(ev.indices.size());
    indices_.insert(indices_.end(), ev.indices.begin(), ev.indices.end());
    values_.insert(values_.end(), ev.values.begin(), ev.values.end());
    laplacians_.insert(laplacians_.end(), ev.laplacians.begin(),
                       ev.laplacians.end());
  }

  // Cut the point range into tiles and build each tile's dense local index
  // space (sorted union of active basis ids). Grid points are laid out
  // atom-by-atom, so contiguous ranges are spatially compact and their
  // unions stay small.
  const std::size_t n_tiles = (np + kTilePoints - 1) / kTilePoints;
  tiles_.resize(n_tiles);
  exec::parallel_for(0, n_tiles, [&](std::size_t t) {
    Tile& tile = tiles_[t];
    tile.p_begin = static_cast<std::uint32_t>(t * kTilePoints);
    tile.p_end = static_cast<std::uint32_t>(
        std::min(np, (t + 1) * kTilePoints));
    const std::uint32_t e_begin = offsets_[tile.p_begin];
    const std::uint32_t e_end = offsets_[tile.p_end];
    tile.basis_ids.assign(indices_.begin() + e_begin, indices_.begin() + e_end);
    std::sort(tile.basis_ids.begin(), tile.basis_ids.end());
    tile.basis_ids.erase(
        std::unique(tile.basis_ids.begin(), tile.basis_ids.end()),
        tile.basis_ids.end());
    AEQP_CHECK(tile.basis_ids.size() < 65536,
               "BatchIntegrator: tile active-basis union too large");
    tile.local_index.resize(e_end - e_begin);
    for (std::uint32_t e = e_begin; e < e_end; ++e) {
      const auto it = std::lower_bound(tile.basis_ids.begin(),
                                       tile.basis_ids.end(), indices_[e]);
      tile.local_index[e - e_begin] =
          static_cast<std::uint16_t>(it - tile.basis_ids.begin());
    }
  });
}

template <typename Getter>
Matrix BatchIntegrator::accumulate_weighted(Getter&& point_factor,
                                            bool use_laplacian) const {
  const std::size_t nb = basis_->size();
  Matrix m(nb, nb);
  // Phase 1 (parallel): every tile accumulates into its dense local block
  // -- direct row[local_index] writes, no global scatter in the inner loop.
  std::vector<std::vector<double>> blocks(tiles_.size());
  exec::parallel_for(0, tiles_.size(), [&](std::size_t t) {
    const Tile& tile = tiles_[t];
    const std::size_t nloc = tile.basis_ids.size();
    std::vector<double>& blk = blocks[t];
    blk.assign(nloc * nloc, 0.0);
    const std::uint32_t e_base = offsets_[tile.p_begin];
    for (std::size_t p = tile.p_begin; p < tile.p_end; ++p) {
      const double f = point_factor(p);
      if (f == 0.0) continue;
      const double w = grid_->point(p).weight * f;
      const std::uint32_t begin = offsets_[p], end = offsets_[p + 1];
      for (std::uint32_t i = begin; i < end; ++i) {
        const double xi = values_[i] * w;
        double* row =
            blk.data() + std::size_t{tile.local_index[i - e_base]} * nloc;
        for (std::uint32_t j = begin; j < end; ++j) {
          const double yj = use_laplacian ? laplacians_[j] : values_[j];
          row[tile.local_index[j - e_base]] += xi * yj;
        }
      }
    }
  });
  // Phase 2 (ordered): flush blocks in tile order, so the floating-point
  // accumulation sequence per element is fixed for every thread count.
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    const Tile& tile = tiles_[t];
    const std::size_t nloc = tile.basis_ids.size();
    const std::vector<double>& blk = blocks[t];
    for (std::size_t i = 0; i < nloc; ++i) {
      double* mrow = m.data() + std::size_t{tile.basis_ids[i]} * nb;
      const double* brow = blk.data() + i * nloc;
      for (std::size_t j = 0; j < nloc; ++j) mrow[tile.basis_ids[j]] += brow[j];
    }
  }
  return m;
}

Matrix BatchIntegrator::overlap() const {
  return accumulate_weighted([](std::size_t) { return 1.0; }, false);
}

Matrix BatchIntegrator::kinetic() const {
  Matrix t = accumulate_weighted([](std::size_t) { return -0.5; }, true);
  // The asymmetric grid estimate of <mu|nabla^2|nu> is symmetrized, the
  // standard practice for NAO grid integration (FHI-aims does the same).
  t.symmetrize();
  return t;
}

Matrix BatchIntegrator::external_potential() const {
  std::call_once(vnuc_once_, [&] {
    const auto& atoms = basis_->structure().atoms();
    const std::size_t np = grid_->size();
    vnuc_samples_.resize(np);
    exec::parallel_for_ranges(0, np, 256, [&](std::size_t b, std::size_t e) {
      for (std::size_t p = b; p < e; ++p) {
        const Vec3 pos = grid_->point(p).pos;
        double v = 0.0;
        for (const auto& a : atoms) {
          const double r = distance(pos, a.pos);
          v += -static_cast<double>(a.z) / std::max(r, 1e-10);
        }
        vnuc_samples_[p] = v;
      }
    });
  });
  return accumulate_weighted(
      [&](std::size_t p) { return vnuc_samples_[p]; }, false);
}

Matrix BatchIntegrator::potential_matrix(std::span<const double> v_samples) const {
  AEQP_CHECK(v_samples.size() == grid_->size(),
             "potential_matrix: sample count mismatch");
  return accumulate_weighted([&](std::size_t p) { return v_samples[p]; }, false);
}

Matrix BatchIntegrator::dipole_matrix(int axis) const {
  AEQP_CHECK(axis >= 0 && axis < 3, "dipole_matrix: axis must be 0..2");
  return accumulate_weighted(
      [&](std::size_t p) { return grid_->point(p).pos[axis]; }, false);
}

std::vector<double> BatchIntegrator::density(const Matrix& p_mat) const {
  const std::size_t nb = basis_->size();
  AEQP_CHECK(p_mat.rows() == nb && p_mat.cols() == nb,
             "density: density matrix shape mismatch");
  std::vector<double> n(grid_->size(), 0.0);
  // Every point owns its own output slot: embarrassingly parallel and
  // bit-identical for any thread count.
  exec::parallel_for_ranges(
      0, grid_->size(), 64, [&](std::size_t pb, std::size_t pe) {
        for (std::size_t p = pb; p < pe; ++p) {
          const std::uint32_t begin = offsets_[p], end = offsets_[p + 1];
          double acc = 0.0;
          for (std::uint32_t i = begin; i < end; ++i) {
            const std::uint32_t mu = indices_[i];
            const double* prow = p_mat.data() + mu * nb;
            double row = 0.0;
            for (std::uint32_t j = begin; j < end; ++j)
              row += prow[indices_[j]] * values_[j];
            acc += values_[i] * row;
          }
          n[p] = acc;
        }
      });
  return n;
}

double BatchIntegrator::moment(std::span<const double> samples, int axis) const {
  AEQP_CHECK(samples.size() == grid_->size(), "moment: sample count mismatch");
  AEQP_CHECK(axis >= 0 && axis < 3, "moment: axis must be 0..2");
  double s = 0.0;
  for (std::size_t p = 0; p < grid_->size(); ++p)
    s += grid_->point(p).weight * grid_->point(p).pos[axis] * samples[p];
  return s;
}

double BatchIntegrator::integrate(std::span<const double> samples) const {
  AEQP_CHECK(samples.size() == grid_->size(), "integrate: sample count mismatch");
  double s = 0.0;
  for (std::size_t p = 0; p < grid_->size(); ++p)
    s += grid_->point(p).weight * samples[p];
  return s;
}

std::size_t BatchIntegrator::active_points() const {
  std::size_t n = 0;
  for (std::size_t p = 0; p < grid_->size(); ++p)
    n += (offsets_[p + 1] > offsets_[p]);
  return n;
}

}  // namespace aeqp::scf
