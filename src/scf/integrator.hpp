#pragma once

/// \file integrator.hpp
/// Batch-based real-space integration of matrix elements over the molecular
/// grid: overlap, kinetic (via the radial-spline Laplacian), external
/// potential, and arbitrary multiplicative-potential matrices, plus density
/// synthesis n(r) = sum_{mu,nu} P_mu_nu chi_mu chi_nu (paper Eqs. 3, 8).
///
/// Basis values at grid points are evaluated once and cached in a sparse
/// per-point layout (indices + values), because the SCF and DFPT loops
/// revisit every point dozens of times with different potentials/density
/// matrices. This cache is exactly the per-batch working set an OpenCL
/// work-group holds in the paper's kernels.
///
/// Matrix accumulation is tiled: contiguous point ranges form tiles, each
/// with the sorted union of its active basis functions. A tile accumulates
/// into a dense local block indexed by that union (the paper's Sec. 4.3
/// indirect-access elimination applied on the host -- no m(mu, indices[j])
/// scatter in the inner loop) and the blocks are flushed to the global
/// matrix in tile order. Tiles run across the exec thread pool; the ordered
/// flush makes the result bit-identical for every thread count.

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "basis/basis_set.hpp"
#include "grid/molecular_grid.hpp"
#include "linalg/matrix.hpp"

namespace aeqp::scf {

/// Grid integrator bound to one (basis, grid) pair.
class BatchIntegrator {
public:
  BatchIntegrator(std::shared_ptr<const basis::BasisSet> basis,
                  std::shared_ptr<const grid::MolecularGrid> grid);

  [[nodiscard]] const basis::BasisSet& basis() const { return *basis_; }
  [[nodiscard]] const grid::MolecularGrid& grid() const { return *grid_; }

  /// Overlap matrix S_mu_nu = \int chi_mu chi_nu.
  [[nodiscard]] linalg::Matrix overlap() const;

  /// Kinetic matrix T_mu_nu = -1/2 \int chi_mu nabla^2 chi_nu (symmetrized).
  [[nodiscard]] linalg::Matrix kinetic() const;

  /// External (nuclear attraction) potential matrix:
  /// V_mu_nu = \int chi_mu (sum_A -Z_A/|r-R_A|) chi_nu.
  /// The per-point nuclear potential samples are computed once on first use
  /// and reused across SCF/CPSCF iterations (they depend only on geometry).
  [[nodiscard]] linalg::Matrix external_potential() const;

  /// Matrix of an arbitrary local potential sampled on the grid:
  /// V_mu_nu = \int chi_mu v(r) chi_nu.
  [[nodiscard]] linalg::Matrix potential_matrix(
      std::span<const double> v_samples) const;

  /// Electric dipole operator matrix D_mu_nu = \int chi_mu r_axis chi_nu.
  [[nodiscard]] linalg::Matrix dipole_matrix(int axis) const;

  /// Density samples on the grid from a density matrix (Eq. 3 / Eq. 8 --
  /// the same contraction serves n and the response n^(1)).
  [[nodiscard]] std::vector<double> density(const linalg::Matrix& p) const;

  /// \int r_axis * f(r) dV for grid-sampled f (dipole moments, Eq. 13).
  [[nodiscard]] double moment(std::span<const double> samples, int axis) const;

  /// \int f dV.
  [[nodiscard]] double integrate(std::span<const double> samples) const;

  /// Number of grid points with at least one basis function in range.
  [[nodiscard]] std::size_t active_points() const;

private:
  std::shared_ptr<const basis::BasisSet> basis_;
  std::shared_ptr<const grid::MolecularGrid> grid_;

  // Sparse per-point cache.
  std::vector<std::uint32_t> offsets_;   // size n_points + 1
  std::vector<std::uint32_t> indices_;   // basis index per entry
  std::vector<double> values_;           // chi values per entry
  std::vector<double> laplacians_;       // matching Laplacians

  /// One accumulation tile: a contiguous point range plus the dense local
  /// index space of every basis function active anywhere in it.
  struct Tile {
    std::uint32_t p_begin = 0, p_end = 0;
    std::vector<std::uint32_t> basis_ids;  ///< sorted union of global ids
    /// Local index of each sparse cache entry in
    /// [offsets_[p_begin], offsets_[p_end]).
    std::vector<std::uint16_t> local_index;
  };
  std::vector<Tile> tiles_;

  // Nuclear potential samples, built lazily (geometry-only, so shared by
  // every SCF and CPSCF iteration).
  mutable std::once_flag vnuc_once_;
  mutable std::vector<double> vnuc_samples_;

  /// Accumulate M += w * x y^T tile by tile (pool-parallel compute, ordered
  /// flush).
  template <typename Getter>
  [[nodiscard]] linalg::Matrix accumulate_weighted(Getter&& point_factor,
                                                   bool use_laplacian) const;
};

}  // namespace aeqp::scf
