#pragma once

/// \file diis.hpp
/// Pulay's Direct Inversion in the Iterative Subspace (DIIS) accelerator
/// for the SCF cycle. The error vector is the commutator-like residual
/// e = H P S - S P H, which vanishes exactly at self-consistency; the next
/// Hamiltonian is the least-squares combination of the stored history that
/// minimizes the extrapolated residual norm.

#include <deque>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"

namespace aeqp::scf {

/// DIIS history and extrapolation.
class DiisMixer {
public:
  /// `max_history`: number of (H, e) pairs retained.
  explicit DiisMixer(std::size_t max_history = 8);

  /// The DIIS residual e = H P S - S P H.
  static linalg::Matrix residual(const linalg::Matrix& h, const linalg::Matrix& p,
                                 const linalg::Matrix& s);

  /// Push the latest Hamiltonian/density pair and return the extrapolated
  /// Hamiltonian. With fewer than two stored pairs (or an ill-conditioned
  /// B matrix) the input H is returned unchanged.
  [[nodiscard]] linalg::Matrix extrapolate(const linalg::Matrix& h,
                                           const linalg::Matrix& p,
                                           const linalg::Matrix& s);

  /// Max |e_ij| of the most recent residual (a convergence diagnostic).
  [[nodiscard]] double last_residual_norm() const { return last_residual_norm_; }

  [[nodiscard]] std::size_t history_size() const { return history_.size(); }

  void reset();

  /// Serialize the stored (H, e) pairs, oldest first, for checkpointing.
  [[nodiscard]] std::vector<std::pair<linalg::Matrix, linalg::Matrix>>
  export_history() const;

  /// Replace the history with pairs from export_history() (oldest first;
  /// truncated to the most recent `max_history` entries). Restores the
  /// mixer to the exact state it was exported from, so an extrapolation
  /// after import is bit-identical to one without the round-trip.
  void import_history(
      std::vector<std::pair<linalg::Matrix, linalg::Matrix>> history);

private:
  struct Entry {
    linalg::Matrix h;
    linalg::Matrix e;
  };
  std::size_t max_history_;
  std::deque<Entry> history_;
  double last_residual_norm_ = 0.0;
};

}  // namespace aeqp::scf
