#pragma once

/// \file server.hpp
/// SolveServer: a long-lived multi-tenant DFPT solve service over the
/// existing ThreadPool + simmpi machinery (ROADMAP item 1). Robustness is
/// the headline contract:
///
///   **No input, fault, or load pattern may crash the server or wedge the
///   queue; every admitted job terminates with a result or a structured
///   error.**
///
/// The contract is enforced in four layers:
///
///  - **Admission control + backpressure.** A bounded queue; submissions
///    beyond capacity are shed with a structured QueueFull (never a silent
///    drop), malformed or oversized requests with JobRejected before they
///    can poison a worker. The job's wall-clock deadline starts at
///    admission, so queue wait spends the same budget as compute.
///
///  - **Deadlines + degradation ladder.** Each job runs under a
///    deadline-aware RecoveryDriver (retry with exponential backoff +
///    jitter, RecoveryOptions::cancel polled every CPSCF iteration). When
///    retries keep failing, the server degrades instead of spinning:
///    damped retry (inside the driver) -> reduced simmpi ranks -> a
///    reduced-accuracy serial tier -> structured DeadlineExceeded/Failed.
///    Every rung taken is reported in the outcome.
///
///  - **Hard job isolation.** A job's RankFailure, AbftError,
///    InvariantViolation -- any exception at all -- is caught at the job
///    boundary and converted into that job's terminal outcome; sibling
///    jobs and server state are untouched (an unaffected job's result is
///    bit-identical to its solo run). Each job gets its own checkpoint
///    namespace (garbage-collected on terminal states), its own
///    RecoveryStats, and a scoped ABFT accumulator instead of process-wide
///    deltas.
///
///  - **Warm-state cache.** Converged ground states (with their radial
///    splines, angular tables, and basis tabulations) and structure-hashed
///    densities are reused across requests with LRU bounds and CRC-checked,
///    corruption-safe invalidation (see warm_cache.hpp).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/membudget.hpp"
#include "resilience/recovery.hpp"
#include "service/job.hpp"
#include "service/warm_cache.hpp"

namespace aeqp::service {

/// Server configuration.
struct ServerOptions {
  std::size_t workers = 2;         ///< concurrent job executors
  std::size_t queue_capacity = 8;  ///< admitted-but-not-running bound
  /// Admission guard: structures above this atom count are rejected with a
  /// structured JobRejected (an oversized job would blow the deadline of
  /// every sibling behind it in the queue).
  std::size_t max_atoms = 64;
  /// Root of the per-job checkpoint namespaces ("job-<id>/" subdirectories,
  /// removed when the job reaches a terminal state).
  std::filesystem::path checkpoint_dir;
  /// Per-attempt retry policy handed to every job's RecoveryDriver; the
  /// server owns checkpoint_key and cancel. backoff_jitter de-synchronizes
  /// concurrent jobs' retries.
  resilience::RecoveryOptions recovery;
  WarmCacheOptions cache;
  /// Accuracy cost of the ReducedAccuracy rung: the CPSCF tolerance is
  /// multiplied by this (capped at 1e-3 absolute).
  double reduced_accuracy_factor = 100.0;
  /// Admission-time memory estimation model (membudget.hpp). When a
  /// per-rank memory budget is armed (AEQP_MEM_BUDGET), a job whose
  /// estimated footprint exceeds the budget is rejected at submit() with a
  /// structured JobRejected of kind "MemoryBudgetExceeded" -- failing fast
  /// beats admitting a job that will OOM mid-solve. The same model keeps
  /// the degradation ladder memory-aware: the ReducedRanks rung RAISES the
  /// per-rank footprint (fewer ranks hold the same replicated state), so it
  /// is skipped when the halved-ranks estimate no longer fits.
  resilience::MemModel mem_model = resilience::MemModel::default_model();
};

/// Monotonic server-wide counters plus live gauges; snapshot via
/// SolveServer::stats(). Per-job numbers live in each JobOutcome -- these
/// are the fleet view the obs dashboard scrapes.
struct ServerStats {
  std::size_t submitted = 0;            ///< submit() calls that passed validation
  std::size_t admitted = 0;             ///< entered the queue
  std::size_t rejected_queue_full = 0;  ///< shed by backpressure
  std::size_t rejected_invalid = 0;     ///< malformed/oversized at admission
  std::size_t rejected_memory = 0;      ///< estimated footprint over budget
  std::size_t completed = 0;            ///< reached a terminal state
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::size_t deadline_expired = 0;
  std::size_t degradations = 0;         ///< ladder rungs taken, fleet-wide
  std::size_t rebalances = 0;           ///< straggler rebalances, fleet-wide
  std::size_t degraded_ranks_seen = 0;  ///< peak degraded ranks in one job
  std::size_t shed_on_shutdown = 0;     ///< queued jobs rejected by shutdown()
  std::size_t checkpoint_gc_failures = 0;  ///< clear() errors (logged, non-fatal)
  std::size_t queue_depth = 0;          ///< gauge: waiting jobs
  std::size_t in_flight = 0;            ///< gauge: running jobs
};

class SolveServer {
public:
  /// Spawns `options.workers` executor threads. `checkpoint_dir` must be
  /// usable (created if missing).
  explicit SolveServer(ServerOptions options);

  /// Drains running jobs, sheds queued ones with a structured error, joins
  /// the workers (equivalent to shutdown()).
  ~SolveServer();

  SolveServer(const SolveServer&) = delete;
  SolveServer& operator=(const SolveServer&) = delete;

  /// Admit a job. Returns its id on admission; throws QueueFull when the
  /// bounded queue is at capacity (backpressure -- retry later) and
  /// JobRejected when the spec itself is unservable (oversized structure,
  /// non-finite coordinates, bad direction -- retrying unchanged is
  /// pointless). Never blocks on the queue.
  std::uint64_t submit(JobSpec spec);

  /// Block until job `id` reaches a terminal state; returns its outcome and
  /// releases the server's record of it (a second wait on the same id
  /// throws). Every admitted job terminates, so wait() always returns.
  [[nodiscard]] JobOutcome wait(std::uint64_t id);

  /// Non-blocking probe: the outcome if `id` is terminal (record retained),
  /// nullopt while queued/running. Throws on an unknown id.
  [[nodiscard]] std::optional<JobOutcome> try_outcome(std::uint64_t id);

  /// Stop admitting, shed still-queued jobs with a structured shutdown
  /// error, let running jobs finish, join workers. Idempotent.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] WarmCache& cache() { return cache_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

private:
  struct JobRecord;

  void worker_loop();
  void execute(JobRecord& rec);
  void finish(JobRecord& rec, JobOutcome&& outcome);

  ServerOptions options_;
  resilience::CheckpointStore store_;
  WarmCache cache_;
  /// Registers the warm cache with the membudget relief ladder: under
  /// memory pressure the governor may clear it (recompute-only cost).
  /// Declared after cache_ so it unregisters before the cache dies.
  resilience::ScopedMemReclaimer cache_reclaimer_;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;   ///< queue became non-empty / stopping
  std::condition_variable cv_done_;   ///< some job reached a terminal state
  std::deque<std::shared_ptr<JobRecord>> queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<JobRecord>> jobs_;
  std::vector<std::thread> workers_;
  ServerStats stats_;
  std::uint64_t next_id_ = 1;
  bool accepting_ = true;
  bool stopping_ = false;
};

/// Register a live view of `server`'s stats as an obs metrics source
/// ("<prefix>/queue_depth", "<prefix>/in_flight", "<prefix>/rejected_queue_full",
/// ...). The server must outlive the registration. The warm cache has its
/// own source (service::register_metrics(WarmCache&)).
[[nodiscard]] obs::ScopedMetricsSource register_metrics(
    const SolveServer& server, std::string prefix = "service");

}  // namespace aeqp::service
