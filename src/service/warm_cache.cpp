#include "service/warm_cache.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "obs/memaudit.hpp"
#include "obs/trace.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/membudget.hpp"

namespace aeqp::service {

namespace {

/// Resident bytes of a cached ground-state entry: the dense matrices and
/// vectors of the ScfResult plus the grid-sampled density. The tabulation
/// machinery behind the result (splines, Lebedev tables) is shared state
/// not owned by the cache slot, so it is not charged here.
std::int64_t ground_entry_bytes(const scf::ScfResult& r) {
  const auto mat = [](const linalg::Matrix& m) {
    return static_cast<std::int64_t>(m.rows() * m.cols() * sizeof(double));
  };
  const auto vec = [](const linalg::Vector& v) {
    return static_cast<std::int64_t>(v.size() * sizeof(double));
  };
  return mat(r.coefficients) + mat(r.density_matrix) + mat(r.overlap) +
         mat(r.hamiltonian) + vec(r.eigenvalues) + vec(r.occupations) +
         static_cast<std::int64_t>(r.density_samples.capacity() *
                                   sizeof(double));
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= kFnvPrime;
  }
}

void fnv_i64(std::uint64_t& h, std::int64_t v) { fnv(h, &v, sizeof(v)); }

void fnv_f64(std::uint64_t& h, double v) {
  // Hash the bit pattern; normalize -0.0 so it hashes like +0.0.
  if (v == 0.0) v = 0.0;
  fnv(h, &v, sizeof(v));
}

std::int64_t quantize(double x, double quantum) {
  return static_cast<std::int64_t>(std::llround(x / quantum));
}

/// Best-effort admission: under an armed memory budget that is already
/// past its soft watermark, a cache insert is skipped rather than risking
/// pushing the rank over the hard limit for state that is merely an
/// optimization. Skipping never fails the job -- the solve result is
/// already computed; only future warm starts are foregone.
bool over_budget_pressure() {
  return resilience::mem_budget_enabled() &&
         resilience::mem_pressure().over_soft;
}

}  // namespace

std::uint64_t structure_hash(const grid::Structure& structure, double quantum) {
  AEQP_CHECK(quantum > 0.0, "structure_hash: quantum must be positive");
  std::uint64_t h = kFnvOffset;
  fnv_i64(h, static_cast<std::int64_t>(structure.size()));
  for (const auto& atom : structure.atoms()) {
    fnv_i64(h, atom.z);
    fnv_i64(h, quantize(atom.pos.x, quantum));
    fnv_i64(h, quantize(atom.pos.y, quantum));
    fnv_i64(h, quantize(atom.pos.z, quantum));
  }
  return h;
}

std::uint64_t scf_options_hash(const scf::ScfOptions& options) {
  std::uint64_t h = kFnvOffset ^ 0x5343464f50545321ull;  // tier marker
  fnv_i64(h, static_cast<std::int64_t>(options.tier));
  fnv_f64(h, options.r_cut);
  fnv_i64(h, static_cast<std::int64_t>(options.grid.radial_points));
  fnv_f64(h, options.grid.r_min);
  fnv_f64(h, options.grid.r_max);
  fnv_i64(h, static_cast<std::int64_t>(options.grid.angular_degree));
  fnv_i64(h, options.grid.becke_weights ? 1 : 0);
  fnv_f64(h, options.grid.weight_cutoff);
  fnv_i64(h, options.poisson.l_max);
  fnv_i64(h, static_cast<std::int64_t>(options.poisson.radial_points));
  fnv_f64(h, options.poisson.r_min);
  fnv_f64(h, options.poisson.r_max);
  fnv_i64(h, options.max_iterations);
  fnv_f64(h, options.density_tolerance);
  fnv_f64(h, options.mixing);
  fnv_i64(h, static_cast<std::int64_t>(options.mixer));
  fnv_i64(h, static_cast<std::int64_t>(options.diis_history));
  fnv_f64(h, options.smearing_sigma);
  fnv_f64(h, options.external_field.x);
  fnv_f64(h, options.external_field.y);
  fnv_f64(h, options.external_field.z);
  return h;
}

WarmCache::WarmCache(WarmCacheOptions options) : options_(options) {}

void WarmCache::track(std::int64_t delta) {
  owned_bytes_ += delta;
  obs::mem_track("service/warm_cache", delta);
}

std::shared_ptr<const scf::ScfResult> WarmCache::find_ground(
    std::uint64_t key) {
  const std::lock_guard<std::mutex> lk(mutex_);
  const auto it = ground_.find(key);
  if (it == ground_.end()) {
    ++stats_.ground_misses;
    return nullptr;
  }
  ground_lru_.splice(ground_lru_.begin(), ground_lru_, it->second);
  ++stats_.ground_hits;
  obs::trace_instant("service/cache_ground_hit");
  return it->second->ground;
}

void WarmCache::put_ground(std::uint64_t key,
                           std::shared_ptr<const scf::ScfResult> ground) {
  AEQP_CHECK(ground != nullptr, "WarmCache: null ground-state entry");
  const std::lock_guard<std::mutex> lk(mutex_);
  if (options_.ground_capacity == 0) return;
  if (over_budget_pressure()) {
    ++stats_.budget_skips;
    obs::trace_instant("service/cache_budget_skip");
    return;
  }
  if (const auto it = ground_.find(key); it != ground_.end()) {
    track(ground_entry_bytes(*ground) -
          ground_entry_bytes(*it->second->ground));
    it->second->ground = std::move(ground);
    ground_lru_.splice(ground_lru_.begin(), ground_lru_, it->second);
    return;
  }
  track(ground_entry_bytes(*ground));
  ground_lru_.push_front({key, std::move(ground)});
  ground_.emplace(key, ground_lru_.begin());
  while (ground_lru_.size() > options_.ground_capacity) {
    track(-ground_entry_bytes(*ground_lru_.back().ground));
    ground_.erase(ground_lru_.back().key);
    ground_lru_.pop_back();
    ++stats_.evictions;
  }
}

std::optional<scf::ScfWarmStart> WarmCache::find_density(std::uint64_t key) {
  const std::lock_guard<std::mutex> lk(mutex_);
  const auto it = density_.find(key);
  if (it == density_.end()) {
    ++stats_.density_misses;
    return std::nullopt;
  }
  try {
    resilience::ScfCheckpoint ckpt = resilience::deserialize_scf(
        it->second->framed, "warm-cache density entry");
    density_lru_.splice(density_lru_.begin(), density_lru_, it->second);
    ++stats_.density_hits;
    obs::trace_instant("service/cache_density_hit");
    scf::ScfWarmStart ws;
    ws.iteration = ckpt.iteration;
    ws.density_matrix = std::move(ckpt.density_matrix);
    return ws;
  } catch (const Error&) {
    // Corruption-safe invalidation: a poisoned entry is dropped and the
    // caller recomputes -- it is never served, and it never kills the job.
    track(-static_cast<std::int64_t>(it->second->framed.size()));
    density_lru_.erase(it->second);
    density_.erase(it);
    ++stats_.poisoned_dropped;
    ++stats_.density_misses;
    obs::trace_instant("service/cache_poisoned_drop");
    return std::nullopt;
  }
}

void WarmCache::put_density(std::uint64_t key,
                            const linalg::Matrix& density_matrix) {
  resilience::ScfCheckpoint ckpt;
  // Iteration 1: a warm start resumes *somewhere* sensible, and the SCF
  // trajectory re-converges from the seeded density regardless.
  ckpt.iteration = 1;
  ckpt.density_matrix = density_matrix;
  std::vector<unsigned char> framed = resilience::serialize(ckpt);
  const std::lock_guard<std::mutex> lk(mutex_);
  if (options_.density_capacity == 0) return;
  if (over_budget_pressure()) {
    ++stats_.budget_skips;
    obs::trace_instant("service/cache_budget_skip");
    return;
  }
  if (const auto it = density_.find(key); it != density_.end()) {
    track(static_cast<std::int64_t>(framed.size()) -
          static_cast<std::int64_t>(it->second->framed.size()));
    it->second->framed = std::move(framed);
    density_lru_.splice(density_lru_.begin(), density_lru_, it->second);
    return;
  }
  track(static_cast<std::int64_t>(framed.size()));
  density_lru_.push_front({key, std::move(framed)});
  density_.emplace(key, density_lru_.begin());
  while (density_lru_.size() > options_.density_capacity) {
    track(-static_cast<std::int64_t>(density_lru_.back().framed.size()));
    density_.erase(density_lru_.back().key);
    density_lru_.pop_back();
    ++stats_.evictions;
  }
}

WarmCacheStats WarmCache::stats() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return stats_;
}

std::size_t WarmCache::ground_size() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return ground_lru_.size();
}

std::size_t WarmCache::density_size() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return density_lru_.size();
}

std::int64_t WarmCache::clear() {
  const std::lock_guard<std::mutex> lk(mutex_);
  const std::int64_t freed = owned_bytes_;
  if (freed != 0) track(-freed);
  ground_.clear();
  ground_lru_.clear();
  density_.clear();
  density_lru_.clear();
  if (freed > 0) obs::trace_instant("service/cache_clear");
  return freed;
}

std::int64_t WarmCache::owned_bytes() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return owned_bytes_;
}

bool WarmCache::corrupt_density_for_test(std::uint64_t key) {
  const std::lock_guard<std::mutex> lk(mutex_);
  const auto it = density_.find(key);
  if (it == density_.end()) return false;
  std::vector<unsigned char>& bytes = it->second->framed;
  if (bytes.empty()) return false;
  bytes[bytes.size() / 2] ^= 0x40;  // flip a payload bit mid-blob
  return true;
}

obs::ScopedMetricsSource register_metrics(const WarmCache& cache,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&cache, prefix = std::move(prefix)](std::vector<obs::MetricSample>& out) {
        const WarmCacheStats s = cache.stats();
        const auto push = [&](const char* name, double v) {
          out.push_back({prefix + "/" + name, v});
        };
        push("ground_hits", static_cast<double>(s.ground_hits));
        push("ground_misses", static_cast<double>(s.ground_misses));
        push("density_hits", static_cast<double>(s.density_hits));
        push("density_misses", static_cast<double>(s.density_misses));
        push("evictions", static_cast<double>(s.evictions));
        push("poisoned_dropped", static_cast<double>(s.poisoned_dropped));
        push("budget_skips", static_cast<double>(s.budget_skips));
        push("ground_entries", static_cast<double>(cache.ground_size()));
        push("density_entries", static_cast<double>(cache.density_size()));
        push("owned_bytes", static_cast<double>(cache.owned_bytes()));
      });
}

}  // namespace aeqp::service
