#pragma once

/// \file warm_cache.hpp
/// Shared warm-state cache of the solve service (ROADMAP item 1): the
/// expensive per-structure state that a stream of similar jobs keeps
/// recomputing, kept across requests with bounded size, LRU eviction, and
/// corruption-safe invalidation.
///
/// Two tiers, both keyed by a quantized structure hash:
///
///  - **Ground tier**: the full converged scf::ScfResult of an exact
///    (structure, SCF options) pair, held by shared_ptr. This is the heavy
///    reuse: the ScfResult carries the radial splines, Lebedev/angular
///    tables, basis tabulations, grid, integrator and Hartree solver that
///    dominate setup cost, so a repeat geometry skips both tabulation and
///    the SCF cycle entirely. Entries are immutable shared state; a hit
///    hands out the shared_ptr (safe to use concurrently -- nothing in the
///    DFPT phase mutates the ground state).
///
///  - **Density tier**: a CRC-framed serialization of the converged density
///    matrix keyed by structure alone. When the ground tier misses (e.g.
///    the same geometry requested with different options, or a near-
///    identical geometry re-quantized to the same hash), the density seeds
///    scf::ScfOptions::warm_start so the SCF converges in a fraction of the
///    iterations (the PR 1 warm-start hooks). Entries are stored as framed
///    bytes (header + payload + CRC-32, the checkpoint wire format), so a
///    bit-flipped cache entry is DETECTED at fetch, dropped, and recomputed
///    -- a poisoned entry is never served (the cache equivalent of the
///    docs/sdc.md contract).
///
/// Thread-safe; all methods take an internal mutex (the cache sits on the
/// job execution path of concurrent workers, not inside numeric kernels).

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "grid/structure.hpp"
#include "obs/metrics.hpp"
#include "scf/scf_solver.hpp"

namespace aeqp::service {

/// Order-sensitive FNV-1a hash of the structure: atomic numbers plus
/// coordinates quantized to `quantum` bohr (geometries closer than the
/// quantum share warm state; distinct geometries practically never
/// collide, and a collision only costs a rejected warm start, never a
/// wrong result -- SCF re-converges from any seed).
[[nodiscard]] std::uint64_t structure_hash(const grid::Structure& structure,
                                           double quantum = 1e-6);

/// Hash of the ScfOptions fields that change the converged ground state.
[[nodiscard]] std::uint64_t scf_options_hash(const scf::ScfOptions& options);

struct WarmCacheOptions {
  std::size_t ground_capacity = 8;    ///< full ScfResult entries (heavy)
  std::size_t density_capacity = 64;  ///< framed density blobs (light)
};

/// Hit/miss/eviction accounting (monotonic, queried for the service
/// metrics source).
struct WarmCacheStats {
  std::size_t ground_hits = 0;
  std::size_t ground_misses = 0;
  std::size_t density_hits = 0;
  std::size_t density_misses = 0;
  std::size_t evictions = 0;          ///< both tiers
  std::size_t poisoned_dropped = 0;   ///< corrupt entries caught by CRC
  std::size_t budget_skips = 0;       ///< puts skipped under memory pressure
};

class WarmCache {
public:
  explicit WarmCache(WarmCacheOptions options);

  /// Ground tier: the converged result of (structure_hash ^ options_hash).
  /// nullptr on miss. Capacity 0 disables the tier (always miss).
  [[nodiscard]] std::shared_ptr<const scf::ScfResult> find_ground(
      std::uint64_t key);
  void put_ground(std::uint64_t key,
                  std::shared_ptr<const scf::ScfResult> ground);

  /// Density tier: a warm start seeded from the cached converged density of
  /// `key`, or nullopt on miss. A CRC-invalid (poisoned) entry is dropped,
  /// counted, and reported as a miss -- the caller recomputes from scratch.
  [[nodiscard]] std::optional<scf::ScfWarmStart> find_density(
      std::uint64_t key);
  void put_density(std::uint64_t key, const linalg::Matrix& density_matrix);

  [[nodiscard]] WarmCacheStats stats() const;
  [[nodiscard]] std::size_t ground_size() const;
  [[nodiscard]] std::size_t density_size() const;

  /// Drop every entry of both tiers and return the bytes freed (the
  /// "service/warm_cache" gauge returns to zero). The memory-pressure
  /// reclaimer the solve service registers with the membudget relief
  /// ladder; a cleared cache only costs recomputation, never correctness.
  std::int64_t clear();

  /// Bytes currently charged to the "service/warm_cache" gauge by this
  /// cache (both tiers). Tracked internally so clear() can report what it
  /// freed without consulting global obs state.
  [[nodiscard]] std::int64_t owned_bytes() const;

  /// Flip one byte of the stored density entry for `key` (if present) --
  /// the corruption-injection hook of the cache tests and the chaos bench;
  /// the next find_density must detect, drop, and recount it. Returns
  /// false when the key holds no entry.
  bool corrupt_density_for_test(std::uint64_t key);

private:
  struct GroundEntry {
    std::uint64_t key = 0;
    std::shared_ptr<const scf::ScfResult> ground;
  };
  struct DensityEntry {
    std::uint64_t key = 0;
    std::vector<unsigned char> framed;  ///< CRC-framed ScfCheckpoint bytes
  };

  /// Adjust owned_bytes_ and the "service/warm_cache" gauge together.
  /// Callers hold mutex_.
  void track(std::int64_t delta);

  mutable std::mutex mutex_;
  WarmCacheOptions options_;
  WarmCacheStats stats_;
  std::int64_t owned_bytes_ = 0;  ///< resident bytes across both tiers
  // LRU: most-recently-used at the front; lookup maps key -> list node.
  std::list<GroundEntry> ground_lru_;
  std::unordered_map<std::uint64_t, std::list<GroundEntry>::iterator> ground_;
  std::list<DensityEntry> density_lru_;
  std::unordered_map<std::uint64_t, std::list<DensityEntry>::iterator> density_;
};

/// Register `cache`'s counters as an obs metrics source
/// ("<prefix>/ground_hits", ...). The cache must outlive the registration.
[[nodiscard]] obs::ScopedMetricsSource register_metrics(
    const WarmCache& cache, std::string prefix = "service/cache");

}  // namespace aeqp::service
