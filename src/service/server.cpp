#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <utility>

#include "common/error.hpp"
#include "linalg/abft.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "parallel/cluster.hpp"

namespace aeqp::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::size_t ms_between(Clock::time_point a, Clock::time_point b) {
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count();
  return ms > 0 ? static_cast<std::size_t>(ms) : 0;
}

/// Taxonomy name of an in-flight exception, for JobOutcome::error_kind.
/// Most-derived classes first -- every one of these inherits aeqp::Error.
const char* classify(const std::exception& e) {
  if (dynamic_cast<const DeadlineExceeded*>(&e)) return "DeadlineExceeded";
  if (dynamic_cast<const QueueFull*>(&e)) return "QueueFull";
  if (const auto* jr = dynamic_cast<const JobRejected*>(&e))
    return jr->kind().c_str();
  if (dynamic_cast<const OutOfMemoryBudget*>(&e)) return "OutOfMemoryBudget";
  if (dynamic_cast<const parallel::RankFailure*>(&e)) return "RankFailure";
  if (dynamic_cast<const parallel::CollectiveTimeout*>(&e))
    return "CollectiveTimeout";
  if (dynamic_cast<const parallel::PayloadCorruption*>(&e))
    return "PayloadCorruption";
  if (dynamic_cast<const linalg::AbftError*>(&e)) return "AbftError";
  if (dynamic_cast<const InvariantViolation*>(&e)) return "InvariantViolation";
  if (dynamic_cast<const Error*>(&e)) return "Error";
  return "std::exception";
}

void accumulate(resilience::RecoveryStats& into,
                const resilience::RecoveryStats& from) {
  into.faults_detected += from.faults_detected;
  into.restores += from.restores;
  into.retries += from.retries;
  into.wasted_iterations += from.wasted_iterations;
  into.shrinks += from.shrinks;
  into.lost_ranks += from.lost_ranks;
  into.buddy_restores += from.buddy_restores;
  into.remap_seconds += from.remap_seconds;
  into.abft_corrections += from.abft_corrections;
  into.invariant_violations += from.invariant_violations;
  into.payload_corruptions += from.payload_corruptions;
  into.oom_events += from.oom_events;
  into.relief_actions += from.relief_actions;
  into.rebalances += from.rebalances;
  into.degraded_ranks = std::max(into.degraded_ranks, from.degraded_ranks);
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Succeeded: return "succeeded";
    case JobState::Rejected: return "rejected";
    case JobState::DeadlineExpired: return "deadline_expired";
    case JobState::Failed: return "failed";
  }
  return "unknown";
}

const char* service_tier_name(ServiceTier t) {
  switch (t) {
    case ServiceTier::Full: return "full";
    case ServiceTier::ReducedRanks: return "reduced_ranks";
    case ServiceTier::ReducedAccuracy: return "reduced_accuracy";
  }
  return "unknown";
}

/// Everything the server tracks about one admitted job. Shared between the
/// queue, the id map, and the executing worker; the record's outcome is
/// written by exactly one worker and read by waiters only after `terminal`
/// flips under the server mutex.
struct SolveServer::JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  Clock::time_point admitted{};
  Clock::time_point deadline{};
  JobOutcome outcome;
  bool terminal = false;
};

SolveServer::SolveServer(ServerOptions options)
    : options_(std::move(options)),
      store_(options_.checkpoint_dir),
      cache_(options_.cache),
      cache_reclaimer_("warm_cache", [this] { return cache_.clear(); }) {
  AEQP_CHECK(options_.workers >= 1, "SolveServer: need at least one worker");
  AEQP_CHECK(options_.queue_capacity >= 1,
             "SolveServer: queue capacity must be positive");
  AEQP_CHECK(options_.max_atoms >= 1, "SolveServer: max_atoms must be positive");
  AEQP_CHECK(options_.reduced_accuracy_factor >= 1.0,
             "SolveServer: reduced_accuracy_factor must be >= 1");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolveServer::~SolveServer() { shutdown(); }

std::uint64_t SolveServer::submit(JobSpec spec) {
  // Validate before touching the queue: a malformed job must never reach a
  // worker, and the rejection tells the client what to fix.
  std::string reason;
  if (spec.structure.size() == 0) {
    reason = "empty structure";
  } else if (spec.structure.size() > options_.max_atoms) {
    reason = "structure has " + std::to_string(spec.structure.size()) +
             " atoms, above the server limit of " +
             std::to_string(options_.max_atoms);
  } else if (spec.direction < 0 || spec.direction > 2) {
    reason = "perturbation direction must be 0, 1, or 2";
  } else if (spec.deadline.count() <= 0) {
    reason = "deadline must be positive";
  } else if (spec.ranks > 1 && spec.ranks_per_node == 0) {
    reason = "ranks_per_node must be positive";
  } else {
    for (const auto& atom : spec.structure.atoms()) {
      if (atom.z <= 0) {
        reason = "atomic number must be positive";
        break;
      }
      if (!std::isfinite(atom.pos.x) || !std::isfinite(atom.pos.y) ||
          !std::isfinite(atom.pos.z)) {
        reason = "non-finite atomic coordinate";
        break;
      }
    }
  }

  // Admission-time memory estimation: with a budget armed, a job whose
  // fitted-scaling estimate cannot fit is rejected up front -- a structured
  // refusal now beats an OutOfMemoryBudget after burning queue and solver
  // time. Estimation is per rank: MORE ranks mean LESS replicated state
  // each, so the estimate uses the ranks the job asked for.
  std::string reason_kind = "JobRejected";
  if (reason.empty() && resilience::mem_budget_enabled()) {
    const std::size_t ranks = std::max<std::size_t>(spec.ranks, 1);
    const std::size_t estimate = resilience::estimate_job_memory(
        spec.structure.size(), ranks, options_.mem_model);
    const std::size_t budget = resilience::mem_budget_bytes();
    if (estimate > budget) {
      reason = "estimated per-rank memory " + std::to_string(estimate) +
               " bytes exceeds the budget of " + std::to_string(budget) +
               " bytes";
      reason_kind = "MemoryBudgetExceeded";
    }
  }

  std::unique_lock<std::mutex> lk(mutex_);
  if (!reason.empty()) {
    if (reason_kind == "MemoryBudgetExceeded") {
      ++stats_.rejected_memory;
    } else {
      ++stats_.rejected_invalid;
    }
    lk.unlock();
    obs::trace_instant("service/reject");
    throw JobRejected(reason, reason_kind);
  }
  if (!accepting_) {
    ++stats_.rejected_invalid;
    lk.unlock();
    obs::trace_instant("service/reject");
    throw JobRejected("server is shutting down");
  }
  if (queue_.size() >= options_.queue_capacity) {
    ++stats_.rejected_queue_full;
    const std::size_t depth = queue_.size();
    lk.unlock();
    obs::trace_instant("service/shed");
    throw QueueFull(depth, options_.queue_capacity);
  }

  auto rec = std::make_shared<JobRecord>();
  rec->id = next_id_++;
  rec->spec = std::move(spec);
  rec->admitted = Clock::now();
  rec->deadline = rec->admitted + rec->spec.deadline;
  rec->outcome.id = rec->id;
  rec->outcome.state = JobState::Queued;
  jobs_.emplace(rec->id, rec);
  queue_.push_back(rec);
  ++stats_.submitted;
  ++stats_.admitted;
  stats_.queue_depth = queue_.size();
  const std::uint64_t id = rec->id;
  lk.unlock();
  cv_work_.notify_one();
  obs::trace_instant("service/admit");
  return id;
}

JobOutcome SolveServer::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lk(mutex_);
  const auto it = jobs_.find(id);
  AEQP_CHECK(it != jobs_.end(),
             "SolveServer::wait: unknown or already-collected job id");
  const std::shared_ptr<JobRecord> rec = it->second;
  cv_done_.wait(lk, [&] { return rec->terminal; });
  JobOutcome out = std::move(rec->outcome);
  jobs_.erase(id);
  return out;
}

std::optional<JobOutcome> SolveServer::try_outcome(std::uint64_t id) {
  const std::lock_guard<std::mutex> lk(mutex_);
  const auto it = jobs_.find(id);
  AEQP_CHECK(it != jobs_.end(),
             "SolveServer::try_outcome: unknown or already-collected job id");
  if (!it->second->terminal) return std::nullopt;
  return it->second->outcome;
}

void SolveServer::shutdown() {
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    accepting_ = false;
    stopping_ = true;
    // Shed still-queued jobs with a structured terminal outcome -- a
    // shutdown must not leave a waiter blocked on a job nobody will run.
    for (const auto& rec : queue_) {
      rec->outcome.state = JobState::Rejected;
      rec->outcome.error = "job rejected: server shut down before execution";
      rec->outcome.error_kind = "JobRejected";
      rec->outcome.queue_seconds = seconds_between(rec->admitted, Clock::now());
      rec->terminal = true;
      ++stats_.completed;
      ++stats_.shed_on_shutdown;
    }
    queue_.clear();
    stats_.queue_depth = 0;
    workers.swap(workers_);
  }
  cv_work_.notify_all();
  cv_done_.notify_all();
  for (std::thread& w : workers) w.join();
}

ServerStats SolveServer::stats() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  ServerStats s = stats_;
  s.queue_depth = queue_.size();
  return s;
}

void SolveServer::worker_loop() {
  for (;;) {
    std::shared_ptr<JobRecord> rec;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_work_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      rec = queue_.front();
      queue_.pop_front();
      stats_.queue_depth = queue_.size();
      ++stats_.in_flight;
      rec->outcome.state = JobState::Running;
    }
    execute(*rec);
  }
}

void SolveServer::finish(JobRecord& rec, JobOutcome&& outcome) {
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    rec.outcome = std::move(outcome);
    rec.terminal = true;
    // Same critical section as the terminal flip: a waiter woken by this
    // job must never still see it counted as in flight.
    --stats_.in_flight;
    ++stats_.completed;
    stats_.degradations += static_cast<std::size_t>(rec.outcome.degradations);
    stats_.rebalances += rec.outcome.recovery.rebalances;
    stats_.degraded_ranks_seen = std::max(stats_.degraded_ranks_seen,
                                          rec.outcome.recovery.degraded_ranks);
    switch (rec.outcome.state) {
      case JobState::Succeeded: ++stats_.succeeded; break;
      case JobState::Failed: ++stats_.failed; break;
      case JobState::DeadlineExpired: ++stats_.deadline_expired; break;
      default: break;
    }
  }
  cv_done_.notify_all();
}

void SolveServer::execute(JobRecord& rec) {
  const Clock::time_point started = Clock::now();
  const std::size_t budget_ms =
      static_cast<std::size_t>(rec.spec.deadline.count());

  JobOutcome out;
  out.id = rec.id;
  out.queue_seconds = seconds_between(rec.admitted, started);

  const auto expired = [&rec] { return Clock::now() >= rec.deadline; };
  const auto elapsed_ms = [&rec] { return ms_between(rec.admitted, Clock::now()); };

  // Per-job isolation: ABFT counters scoped to this job (rank threads
  // inherit the scope), checkpoints under a private namespace that is
  // garbage-collected below on every terminal path.
  const linalg::AbftStatsScope abft_scope;
  resilience::CheckpointStore job_store =
      store_.scoped("job-" + std::to_string(rec.id));

  try {
    AEQP_TRACE_SCOPE("service/job");
    if (expired()) {
      throw DeadlineExceeded("job expired while queued", budget_ms,
                             elapsed_ms());
    }

    // --- Ground state: warm cache, then SCF with deadline observer. ---
    const std::uint64_t s_hash = structure_hash(rec.spec.structure);
    const std::uint64_t g_key = s_hash ^ scf_options_hash(rec.spec.scf);
    std::shared_ptr<const scf::ScfResult> ground = cache_.find_ground(g_key);
    if (ground) {
      out.ground_cache_hit = true;
    } else {
      scf::ScfOptions sopt = rec.spec.scf;
      if (auto ws = cache_.find_density(s_hash)) {
        sopt.warm_start =
            std::make_shared<const scf::ScfWarmStart>(std::move(*ws));
        out.density_warm_start = true;
      }
      bool deadline_abort = false;
      sopt.observer = [&](const scf::ScfIterationState&) {
        if (expired()) {
          deadline_abort = true;
          return scf::ScfAction::Abort;
        }
        return scf::ScfAction::Continue;
      };
      scf::ScfResult res = scf::ScfSolver(rec.spec.structure, sopt).run();
      if (!res.converged && !deadline_abort && sopt.warm_start) {
        // Belt-and-braces beyond the CRC check: a warm start that fails to
        // converge (hash collision, stale geometry) costs one cold rerun,
        // never the job.
        sopt.warm_start.reset();
        out.density_warm_start = false;
        res = scf::ScfSolver(rec.spec.structure, sopt).run();
      }
      if (deadline_abort) {
        throw DeadlineExceeded("deadline expired during SCF", budget_ms,
                               elapsed_ms());
      }
      AEQP_CHECK(res.converged, "SCF failed to converge within max_iterations");
      out.scf_iterations = res.iterations;
      auto shared = std::make_shared<const scf::ScfResult>(std::move(res));
      cache_.put_ground(g_key, shared);
      cache_.put_density(s_hash, shared->density_matrix);
      ground = std::move(shared);
    }

    // --- CPSCF under the degradation ladder. ---
    struct Rung {
      ServiceTier tier;
      std::size_t ranks;
      core::DfptOptions dfpt;
    };
    core::DfptOptions base = rec.spec.dfpt;
    // Non-convergence must surface as a fault the ladder can act on, not as
    // a silently unconverged "result".
    base.require_convergence = true;
    std::vector<Rung> rungs;
    rungs.push_back({ServiceTier::Full, rec.spec.ranks, base});
    if (rec.spec.allow_degradation) {
      if (rec.spec.ranks > 1) {
        // Memory-aware ladder: halving the ranks RAISES the per-rank
        // footprint (the same replicated state spread over fewer ranks).
        // Under an armed budget the rung is skipped when the halved-world
        // estimate no longer fits -- degrading into a guaranteed OOM is
        // worse than jumping straight to the serial reduced-accuracy tier.
        const std::size_t half = rec.spec.ranks / 2;
        const bool fits =
            !resilience::mem_budget_enabled() ||
            resilience::estimate_job_memory(rec.spec.structure.size(), half,
                                            options_.mem_model) <=
                resilience::mem_budget_bytes();
        if (fits) {
          rungs.push_back({ServiceTier::ReducedRanks, half, base});
        } else {
          obs::trace_instant("service/skip_reduced_ranks");
        }
      }
      core::DfptOptions loose = base;
      loose.tolerance =
          std::min(base.tolerance * options_.reduced_accuracy_factor, 1e-3);
      rungs.push_back({ServiceTier::ReducedAccuracy, 0, loose});
    }

    std::string last_error = "degradation ladder exhausted";
    std::string last_kind = "Error";
    bool solved = false;
    for (std::size_t i = 0; i < rungs.size() && !solved; ++i) {
      const Rung& rung = rungs[i];
      if (expired()) {
        throw DeadlineExceeded(
            "deadline expired before tier " +
                std::string(service_tier_name(rung.tier)) + " could start",
            budget_ms, elapsed_ms());
      }
      resilience::RecoveryOptions ropt = options_.recovery;
      // The per-job store is already namespaced; a per-rung key keeps a
      // degraded retry from resuming a previous tier's trajectory.
      ropt.checkpoint_key = "cpscf-tier" + std::to_string(i);
      ropt.cancel = expired;
      resilience::RecoveryDriver driver(job_store, ropt);
      try {
        core::DfptDirectionResult r;
        std::size_t rung_ranks = rung.ranks;
        // Degraded-rank awareness: when an earlier tier reported N degraded
        // (slow but alive) ranks, the ReducedRanks rung drops only those N
        // instead of blindly halving -- losing the minimum compute the
        // evidence justifies. A larger world than the pre-checked half has
        // a LOWER per-rank footprint, so the admission memory estimate
        // still holds.
        if (rung.tier == ServiceTier::ReducedRanks &&
            out.recovery.degraded_ranks > 0 &&
            rec.spec.ranks > out.recovery.degraded_ranks) {
          const std::size_t spared =
              rec.spec.ranks - out.recovery.degraded_ranks;
          if (spared > rung_ranks) {
            rung_ranks = spared;
            obs::trace_instant("service/degraded_aware_ranks");
          }
        }
        if (rung_ranks > 1) {
          core::ParallelDfptOptions popts;
          popts.dfpt = rung.dfpt;
          popts.ranks = rung_ranks;
          popts.ranks_per_node = std::min(rec.spec.ranks_per_node, rung_ranks);
          popts.fault_injector = rec.spec.fault_injector;
          // A collective may not out-wait the job: clamp its timeout to the
          // remaining budget so a stalled rank surfaces as a recoverable
          // CollectiveTimeout inside the deadline.
          const std::size_t left =
              budget_ms > elapsed_ms() ? budget_ms - elapsed_ms() : 1;
          popts.collective_timeout_ms =
              std::min(popts.collective_timeout_ms, std::max<std::size_t>(left, 1));
          r = driver.solve_direction_parallel(*ground, popts, rec.spec.direction)
                  .direction;
        } else {
          r = driver.solve_direction(*ground, rung.dfpt, rec.spec.direction);
        }
        accumulate(out.recovery, driver.last_stats());
        out.tier = rung.tier;
        out.result = std::move(r);
        out.state = JobState::Succeeded;
        solved = true;
      } catch (const DeadlineExceeded&) {
        accumulate(out.recovery, driver.last_stats());
        throw;  // the budget is gone; no further rung can help
      } catch (const std::exception& e) {
        accumulate(out.recovery, driver.last_stats());
        last_error = e.what();
        last_kind = classify(e);
        if (i + 1 < rungs.size()) {
          ++out.degradations;
          obs::trace_instant("service/degrade");
        }
      }
    }
    if (!solved) {
      out.state = JobState::Failed;
      out.error = last_error;
      out.error_kind = last_kind;
      // Terminal for this job: every degradation rung failed. Dump the
      // flight recorder so the post-mortem shows the run-up.
      obs::flight_on_error(out.error_kind.c_str(), out.error);
    }
  } catch (const DeadlineExceeded& e) {
    out.state = JobState::DeadlineExpired;
    out.error = e.what();
    out.error_kind = "DeadlineExceeded";
    obs::trace_instant("service/deadline");
    obs::flight_on_error("DeadlineExceeded", out.error);
  } catch (const std::exception& e) {
    // Job-boundary isolation: any escape becomes THIS job's structured
    // failure; the worker, the queue, and sibling jobs are unaffected.
    out.state = JobState::Failed;
    out.error = e.what();
    out.error_kind = classify(e);
    obs::flight_on_error(out.error_kind.c_str(), out.error);
  }

  out.abft = abft_scope.stats();
  // Checkpoint hygiene: the job's namespace dies with the job. A GC failure
  // is counted and reported, never fatal to an already-terminal job.
  try {
    job_store.clear();
    std::error_code ec;
    std::filesystem::remove(options_.checkpoint_dir /
                                ("job-" + std::to_string(rec.id)),
                            ec);
  } catch (const std::exception&) {
    const std::lock_guard<std::mutex> lk(mutex_);
    ++stats_.checkpoint_gc_failures;
  }
  out.run_seconds = seconds_between(started, Clock::now());
  finish(rec, std::move(out));
}

obs::ScopedMetricsSource register_metrics(const SolveServer& server,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&server,
       prefix = std::move(prefix)](std::vector<obs::MetricSample>& out) {
        const ServerStats s = server.stats();
        const auto push = [&](const char* name, double v) {
          out.push_back({prefix + "/" + name, v});
        };
        push("submitted", static_cast<double>(s.submitted));
        push("admitted", static_cast<double>(s.admitted));
        push("rejected_queue_full", static_cast<double>(s.rejected_queue_full));
        push("rejected_invalid", static_cast<double>(s.rejected_invalid));
        push("rejected_memory", static_cast<double>(s.rejected_memory));
        push("completed", static_cast<double>(s.completed));
        push("succeeded", static_cast<double>(s.succeeded));
        push("failed", static_cast<double>(s.failed));
        push("deadline_expired", static_cast<double>(s.deadline_expired));
        push("degradations", static_cast<double>(s.degradations));
        push("rebalances", static_cast<double>(s.rebalances));
        push("degraded_ranks_seen",
             static_cast<double>(s.degraded_ranks_seen));
        push("shed_on_shutdown", static_cast<double>(s.shed_on_shutdown));
        push("checkpoint_gc_failures",
             static_cast<double>(s.checkpoint_gc_failures));
        push("queue_depth", static_cast<double>(s.queue_depth));
        push("in_flight", static_cast<double>(s.in_flight));
      });
}

}  // namespace aeqp::service
