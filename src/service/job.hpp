#pragma once

/// \file job.hpp
/// Job vocabulary of the multi-tenant solve service: what a client submits
/// (JobSpec), how far the degradation ladder had to reach (ServiceTier),
/// and what every job terminates with (JobOutcome). The service's headline
/// contract is encoded in the types: a submitted job always reaches a
/// terminal JobState carrying either a DFPT result or a structured error --
/// never a crash, never a wedged queue entry, never a silent drop.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/dfpt.hpp"
#include "grid/structure.hpp"
#include "linalg/abft.hpp"
#include "parallel/fault.hpp"
#include "resilience/recovery.hpp"
#include "scf/scf_solver.hpp"

namespace aeqp::service {

/// Lifecycle of a job. Queued/Running are transient; the other four are
/// terminal and exactly one of them is reached by every submitted job.
enum class JobState {
  Queued,           ///< admitted, waiting for a worker
  Running,          ///< a worker is executing it
  Succeeded,        ///< result is valid (possibly at a degraded tier)
  Rejected,         ///< shed at admission or pre-run (QueueFull/JobRejected)
  DeadlineExpired,  ///< budget ran out before any rung could finish
  Failed,           ///< every degradation rung exhausted; error is structured
};

[[nodiscard]] const char* job_state_name(JobState s);

/// Rung of the graceful-degradation ladder a job's result was produced at.
/// The ladder trades fidelity for termination: each rung keeps the job
/// inside its deadline at a cost the outcome reports honestly.
enum class ServiceTier {
  Full = 0,             ///< as requested
  ReducedRanks = 1,     ///< same physics, fewer simmpi ranks
  ReducedAccuracy = 2,  ///< loosened CPSCF tolerance, serial execution
};

[[nodiscard]] const char* service_tier_name(ServiceTier t);

/// One molecule/perturbation solve request.
struct JobSpec {
  grid::Structure structure;        ///< molecule (validated at admission)
  int direction = 2;                ///< perturbation direction in {0, 1, 2}
  scf::ScfOptions scf;              ///< ground-state settings
  core::DfptOptions dfpt;           ///< CPSCF settings
  /// Simulated MPI ranks for the CPSCF phase; 0 or 1 = serial solver.
  std::size_t ranks = 0;
  std::size_t ranks_per_node = 2;
  /// Wall-clock budget measured from ADMISSION (queue wait spends it too).
  std::chrono::milliseconds deadline{30000};
  /// Let the server walk the degradation ladder on repeated faults; false
  /// pins the job to ServiceTier::Full (fail rather than degrade).
  bool allow_degradation = true;
  /// Optional per-job fault injection replayed by the simmpi runtime (chaos
  /// testing; must outlive the job). Null = fault-free.
  parallel::FaultInjector* fault_injector = nullptr;
};

/// Terminal report of one job. `result` is meaningful only when
/// `state == Succeeded`; `error`/`error_kind` only otherwise.
struct JobOutcome {
  std::uint64_t id = 0;
  JobState state = JobState::Queued;
  ServiceTier tier = ServiceTier::Full;  ///< rung the result came from
  int degradations = 0;                  ///< ladder steps taken
  core::DfptDirectionResult result;      ///< valid when Succeeded

  std::string error;       ///< structured error text (terminal failures)
  std::string error_kind;  ///< taxonomy name: "QueueFull", "DeadlineExceeded",
                           ///< "RankFailure", "InvariantViolation", ...

  // Per-job accounting, isolated from concurrent siblings.
  resilience::RecoveryStats recovery;  ///< retries/rollbacks of this job only
  linalg::AbftStats abft;              ///< scoped ABFT counts of this job only
  int scf_iterations = 0;              ///< 0 when the ground state was cached
  bool ground_cache_hit = false;       ///< full ground state served from cache
  bool density_warm_start = false;     ///< SCF warm-started from a cached density
  double queue_seconds = 0.0;          ///< admission -> worker pickup
  double run_seconds = 0.0;            ///< worker pickup -> terminal state
};

}  // namespace aeqp::service
