#include "kernels/hartree_pm_kernel.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aeqp::kernels {

double pm_workload(std::size_t center, int p, int m) {
  // Smooth deterministic arithmetic resembling the multipole coefficient
  // update: depends on both quantum numbers and the center.
  const double fp = static_cast<double>(p), fm = static_cast<double>(m);
  const double c = 0.1 * static_cast<double>(center % 97);
  return std::exp(-0.05 * fp) * std::cos(0.3 * fm + c) / (1.0 + fp * fp + fm * fm);
}

PmLoopResult run_pm_loop_nested(simt::SimtRuntime& rt, std::size_t n_centers,
                                int pmax) {
  AEQP_CHECK(pmax >= 0 && pmax <= 9, "run_pm_loop_nested: pmax must be 0..9");
  rt.stats().reset();
  PmLoopResult res;
  const std::size_t width = static_cast<std::size_t>(pmax + 1);
  const std::size_t nlm = width * width;
  res.values.assign(n_centers * nlm, 0.0);
  auto out = rt.bind(res.values);

  rt.launch(n_centers, width, [&](simt::WorkGroup& wg) {
    const std::size_t center = wg.group_id();
    // Loop-carried structure: only the m-loop of one p level runs in
    // parallel; each p level is a separate lockstep issue over 2p+1 lanes
    // out of a full wavefront (poor utilization, the Fig. 13 bottleneck).
    for (int p = 0; p <= pmax; ++p) {
      for (int m = -p; m <= p; ++m) {
        const std::size_t idx = static_cast<std::size_t>(p * p + m + p);
        out.store(center * nlm + idx, pm_workload(center, p, m));
        wg.flops(12);
      }
      wg.issue_simt(static_cast<std::size_t>(2 * p + 1), 12);
    }
  });
  res.stats = rt.stats();
  return res;
}

PmLoopResult run_pm_loop_collapsed(simt::SimtRuntime& rt, std::size_t n_centers,
                                   int pmax) {
  AEQP_CHECK(pmax >= 0 && pmax <= 9, "run_pm_loop_collapsed: pmax must be 0..9");
  rt.stats().reset();
  PmLoopResult res;
  const std::size_t width = static_cast<std::size_t>(pmax + 1);
  const std::size_t nlm = width * width;
  res.values.assign(n_centers * nlm, 0.0);
  auto out = rt.bind(res.values);

  rt.launch(n_centers, nlm, [&](simt::WorkGroup& wg) {
    const std::size_t center = wg.group_id();
    // Dependence removed: every (p, m) pair is one independent work-item;
    // (p, m) recovered from the flat index exactly as in the paper.
    for (std::size_t idx = 0; idx < nlm; ++idx) {
      const int p = static_cast<int>(std::sqrt(static_cast<double>(idx)));
      const int m = static_cast<int>(idx) - p * p - p;
      out.store(center * nlm + idx, pm_workload(center, p, m));
      wg.flops(14);  // includes the sqrt/index arithmetic
    }
    wg.issue_simt(nlm, 14);
  });
  res.stats = rt.stats();
  return res;
}

}  // namespace aeqp::kernels
