#pragma once

/// \file hartree_pm_kernel.hpp
/// Fine-grained parallelization of the Adams-Moulton (p, m) loop in the
/// response-potential phase (paper Sec. 4.4 / Fig. 13).
///
/// The nested form carries a dependence from the outer angular-momentum
/// loop into the inner magnetic loop (idx = p^2 + m + p), so it can only be
/// parallelized over pmax+1 <= 10 threads. The collapsed form recovers
/// (p, m) from the flat index (p = floor(sqrt(idx)), m = idx - p^2 - p) and
/// parallelizes over (pmax+1)^2 threads.

#include <cstddef>
#include <vector>

#include "simt/runtime.hpp"

namespace aeqp::kernels {

struct PmLoopResult {
  std::vector<double> values;  ///< A[idx] per center, flattened
  simt::KernelStats stats;
};

/// The per-(p,m) workload func(p, m) of the integrator: a deterministic
/// arithmetic kernel standing in for the Adams-Moulton coefficient update.
double pm_workload(std::size_t center, int p, int m);

/// Nested two-level loop: SIMT width limited to pmax+1 (baseline).
PmLoopResult run_pm_loop_nested(simt::SimtRuntime& rt, std::size_t n_centers,
                                int pmax);

/// Collapsed single loop: SIMT width (pmax+1)^2 (optimized).
PmLoopResult run_pm_loop_collapsed(simt::SimtRuntime& rt, std::size_t n_centers,
                                   int pmax);

}  // namespace aeqp::kernels
