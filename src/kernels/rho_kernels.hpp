#pragma once

/// \file rho_kernels.hpp
/// The widely-dependent producer/consumer kernel pair of the response-
/// potential (Rho) phase and the fusion strategies of paper Sec. 4.2.
///
/// Producer: builds the two spline-coefficient sets (rho_multipole_spl and
/// delta_v_hart_part_spl) for one atom. Every thread of the consumer needs
/// ALL of them -> wide dependence. The same producer runs redundantly on
/// every MPI process sharing a device (communication avoidance).
///
/// Consumer: interpolates the splined multipole components at its grid
/// points and assembles the response potential.
///
/// Fusion variants:
///  - Unfused: 2 launches per rank, spline sets round-trip to host memory.
///  - VerticalFused (SW39010): producer+consumer in one kernel, data held
///    on-chip and exchanged by RMA; applicable only if the sets fit the
///    64 KB RMA volume limit (Fig. 12a).
///  - HorizontalFused (GPU): one producer serves the fused consumers of all
///    ranks sharing the GPU; spline sets stay resident in device memory.

#include <cstddef>
#include <vector>

#include "simt/runtime.hpp"

namespace aeqp::kernels {

/// Workload shape of one Rho-phase invocation.
struct RhoPhaseConfig {
  std::size_t n_atoms = 8;        ///< atoms whose splines this device handles
  int l_max = 4;                  ///< multipole order
  std::size_t radial_points = 96; ///< spline knots per channel
  std::size_t grid_points_per_rank = 4096;  ///< consumer work per rank
  std::size_t ranks_per_device = 8;         ///< MPI processes sharing the device

  [[nodiscard]] std::size_t lm_channels() const {
    return static_cast<std::size_t>((l_max + 1) * (l_max + 1));
  }
  /// Bytes of one atom's two spline sets (the Fig. 12a quantity).
  [[nodiscard]] std::size_t spline_bytes_per_atom() const;
};

enum class FusionMode { Unfused, VerticalFused, HorizontalFused };

struct RhoPhaseResult {
  /// Response-potential samples, one block of grid_points_per_rank per rank
  /// (bit-identical across fusion modes).
  std::vector<double> potential;
  /// Counters accumulated on the runtime during this phase.
  simt::KernelStats stats;
  /// Vertical fusion feasibility: spline sets fit the device RMA limit.
  bool vertical_applicable = false;
  /// Producer kernel executions (redundancy eliminated by horizontal fusion).
  std::size_t producer_runs = 0;
};

/// Execute the Rho phase under the given fusion mode. Resets and returns
/// the runtime's counters for this phase only.
RhoPhaseResult run_rho_phase(simt::SimtRuntime& rt, const RhoPhaseConfig& cfg,
                             FusionMode mode);

}  // namespace aeqp::kernels
