#include "kernels/density_kernels.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace aeqp::kernels {

DensityKernelWorkload DensityKernelWorkload::make(std::size_t n_basis_local,
                                                  std::size_t n_basis_global,
                                                  std::size_t n_points,
                                                  std::size_t support,
                                                  std::uint64_t seed) {
  AEQP_CHECK(support <= n_basis_local,
             "DensityKernelWorkload: support exceeds local basis size");
  AEQP_CHECK(n_basis_local <= n_basis_global,
             "DensityKernelWorkload: local basis exceeds global");
  DensityKernelWorkload w;
  w.n_basis_local = n_basis_local;
  w.n_basis_global = n_basis_global;
  w.n_points = n_points;
  w.support = support;
  w.seed = seed;
  Rng rng(seed);

  // Embed the local block at a fixed offset of the global index space.
  const std::size_t offset = (n_basis_global - n_basis_local) / 2;
  w.local_to_global.resize(n_basis_local);
  for (std::size_t i = 0; i < n_basis_local; ++i) w.local_to_global[i] = offset + i;

  w.p_dense = linalg::Matrix(n_basis_local, n_basis_local);
  std::vector<linalg::Triplet> trip;
  trip.reserve(n_basis_local * n_basis_local);
  for (std::size_t i = 0; i < n_basis_local; ++i)
    for (std::size_t j = 0; j < n_basis_local; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      w.p_dense(i, j) = v;
      trip.push_back({offset + i, offset + j, v});
    }
  w.p_sparse = linalg::CsrMatrix(n_basis_global, n_basis_global, std::move(trip));

  w.points.resize(n_points);
  for (auto& pt : w.points) {
    pt.indices.resize(support);
    pt.values.resize(support);
    // Contiguous-ish support window with jitter (spatial locality of a batch).
    const std::size_t base = rng.uniform_index(n_basis_local - support + 1);
    for (std::size_t k = 0; k < support; ++k) {
      pt.indices[k] = static_cast<std::uint32_t>(base + k);
      pt.values[k] = rng.uniform(-0.5, 0.5);
    }
  }
  return w;
}

DensityKernelResult run_sumup_dense(simt::SimtRuntime& rt,
                                    const DensityKernelWorkload& w) {
  rt.stats().reset();
  DensityKernelResult res;
  res.density.assign(w.n_points, 0.0);

  Timer timer;
  rt.launch(1, w.n_points, [&](simt::WorkGroup& wg) {
    for (std::size_t p = 0; p < w.n_points; ++p) {
      const PointSupport& pt = w.points[p];
      double acc = 0.0;
      for (std::size_t a = 0; a < pt.indices.size(); ++a) {
        const double* row = w.p_dense.data() + pt.indices[a] * w.n_basis_local;
        double partial = 0.0;
        for (std::size_t b = 0; b < pt.indices.size(); ++b)
          partial += row[pt.indices[b]] * pt.values[b];  // one direct access
        acc += pt.values[a] * partial;
      }
      res.density[p] = acc;
      wg.flops(2 * pt.indices.size() * pt.indices.size());
    }
    wg.issue_simt(w.n_points, 2 * w.support);
  });
  // Counter bookkeeping: one streaming read per matrix element touched.
  rt.stats().offchip_read_bytes +=
      w.n_points * w.support * w.support * sizeof(double);
  res.host_seconds = timer.seconds();
  res.stats = rt.stats();
  return res;
}

DensityKernelResult run_sumup_sparse(simt::SimtRuntime& rt,
                                     const DensityKernelWorkload& w) {
  rt.stats().reset();
  DensityKernelResult res;
  res.density.assign(w.n_points, 0.0);

  Timer timer;
  rt.launch(1, w.n_points, [&](simt::WorkGroup& wg) {
    for (std::size_t p = 0; p < w.n_points; ++p) {
      const PointSupport& pt = w.points[p];
      double acc = 0.0;
      for (std::size_t a = 0; a < pt.indices.size(); ++a) {
        const std::size_t gi = w.local_to_global[pt.indices[a]];
        double partial = 0.0;
        for (std::size_t b = 0; b < pt.indices.size(); ++b) {
          const std::size_t gj = w.local_to_global[pt.indices[b]];
          // Row pointer, column search, value: >= 3 dependent accesses.
          partial += w.p_sparse.fetch(gi, gj) * pt.values[b];
        }
        acc += pt.values[a] * partial;
      }
      res.density[p] = acc;
      wg.flops(2 * pt.indices.size() * pt.indices.size());
    }
    wg.issue_simt(w.n_points, 2 * w.support);
  });
  rt.stats().dependent_accesses +=
      3 * w.n_points * w.support * w.support;  // row ptr + col + value
  rt.stats().offchip_read_bytes +=
      w.n_points * w.support * w.support * 3 * sizeof(double);
  res.host_seconds = timer.seconds();
  res.stats = rt.stats();
  return res;
}

}  // namespace aeqp::kernels
