#pragma once

/// \file init_kernel.hpp
/// The grid-partitioning initialization kernel of paper Sec. 4.3 / Fig. 11.
///
/// The hot loop gathers atom coordinates through an index translation:
/// coord_center[atom_list[i_center]] -- a dependent A[B[i]] access with weak
/// spatial locality. The optimization builds, once per simulated system, a
/// rearranged array indexed directly by the loop variable, turning the
/// gather into a streaming read.

#include <cstdint>
#include <vector>

#include "simt/runtime.hpp"

namespace aeqp::kernels {

/// Inputs of the initialization kernel: per-center global atom ids and the
/// coordinate table indexed by local id.
struct InitKernelInput {
  std::vector<double> coord_center;     ///< 3 doubles per local atom id
  std::vector<std::uint32_t> atom_list; ///< local id per global center
};

/// Build a synthetic input with `n_centers` centers over `n_atoms` atoms;
/// the permutation is deterministic in `seed`.
InitKernelInput make_init_input(std::size_t n_atoms, std::size_t n_centers,
                                std::uint64_t seed = 99);

/// The once-per-system mapping f of Sec. 4.3: rearranged coordinates
/// directly indexed by center id (C[i] = A[B[i]]).
std::vector<double> build_rearranged_coords(const InitKernelInput& in);

struct InitKernelResult {
  std::vector<double> center_coords;  ///< gathered output, 3 per center
  double host_seconds = 0.0;          ///< measured wall time of the loop
};

/// Run the kernel with the indirect access pattern (baseline).
InitKernelResult run_init_kernel_indirect(simt::SimtRuntime& rt,
                                          const InitKernelInput& in);

/// Run with indirect accesses eliminated via the rearranged table.
InitKernelResult run_init_kernel_direct(simt::SimtRuntime& rt,
                                        const InitKernelInput& in,
                                        const std::vector<double>& rearranged);

}  // namespace aeqp::kernels
