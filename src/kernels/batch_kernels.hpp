#pragma once

/// \file batch_kernels.hpp
/// The Sumup and H phases expressed in the paper's OpenCL execution model
/// (Sec. 4.1) over *real* molecular data: each work-group processes one
/// batch of grid points, each work-item one grid point; per-batch basis
/// values live in __local memory; producing the response density and the
/// response-Hamiltonian contribution of the batch.
///
/// These kernels compute the same numbers as scf::BatchIntegrator (the test
/// suite asserts equality) while exercising and counting the device-model
/// events the portability analysis consumes.

#include <memory>
#include <vector>

#include "basis/basis_set.hpp"
#include "grid/batch.hpp"
#include "grid/molecular_grid.hpp"
#include "linalg/matrix.hpp"
#include "simt/runtime.hpp"

namespace aeqp::kernels {

/// Precomputed per-batch basis support: the union of basis functions that
/// touch any point of the batch (the "small dense block" of Fig. 3(b)),
/// plus per-point sparse values against that local index space.
struct BatchSupport {
  std::vector<std::uint32_t> basis_ids;       ///< local -> global basis index
  std::vector<std::uint32_t> point_ids;       ///< grid point ids
  std::vector<std::uint32_t> offsets;         ///< per-point CSR into entries
  std::vector<std::uint16_t> local_index;     ///< entry -> local basis index
  std::vector<double> values;                 ///< entry -> chi value
};

/// Build the supports for every batch (done once per geometry; this is the
/// "initialization" work Fig. 11 optimizes).
std::vector<BatchSupport> build_batch_supports(
    const basis::BasisSet& basis, const grid::MolecularGrid& grid,
    const std::vector<grid::Batch>& batches);

/// Sumup kernel: response density n^(1) at every grid point of the given
/// batches, reading the density matrix through the batch-local dense block.
/// Output is indexed by global grid-point id (only covered points written).
void sumup_kernel(simt::SimtRuntime& rt, const grid::MolecularGrid& grid,
                  const std::vector<BatchSupport>& supports,
                  const linalg::Matrix& p1, std::vector<double>& n1_out);

/// H kernel: accumulate the response-Hamiltonian integrals
/// sum_p w_p v(p) chi_mu(p) chi_nu(p) over the given batches into `h_out`
/// (global basis indexing). Per-batch accumulation happens in __local
/// memory over the small dense block, then flushes to __global -- the
/// memory-traffic pattern the locality mapping enables.
void h_kernel(simt::SimtRuntime& rt, const grid::MolecularGrid& grid,
              const std::vector<BatchSupport>& supports,
              std::span<const double> v_samples, linalg::Matrix& h_out);

}  // namespace aeqp::kernels
