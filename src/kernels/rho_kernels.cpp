#include "kernels/rho_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aeqp::kernels {
namespace {

constexpr double kR0 = 0.1, kR1 = 10.0;

/// Natural cubic spline second derivatives for uniformly spaced samples.
/// (Same math as basis::CubicSpline, expressed over counted buffers.)
void solve_natural_spline_y2(simt::WorkGroup& wg, double h,
                             const std::vector<double>& y,
                             std::vector<double>& y2) {
  const std::size_t n = y.size();
  y2.assign(n, 0.0);
  std::vector<double> u(n, 0.0);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double p = 0.5 * y2[i - 1] + 2.0;
    y2[i] = -0.5 / p;
    u[i] = (y[i + 1] - 2.0 * y[i] + y[i - 1]) / h;
    u[i] = (3.0 * u[i] / h - 0.5 * u[i - 1]) / p;
  }
  for (std::size_t k = n - 1; k-- > 0;) y2[k] = y2[k] * y2[k + 1] + u[k];
  wg.flops(10 * n);
}

/// Uniform-knot natural-spline interpolation from counted coefficient rows.
double spline_eval(simt::WorkGroup& wg, const simt::GlobalBuffer& yv,
                   const simt::GlobalBuffer& y2v, std::size_t row_offset,
                   std::size_t n, double h, double r) {
  const double t = std::clamp((r - kR0) / h, 0.0, static_cast<double>(n - 1));
  const std::size_t i = std::min(static_cast<std::size_t>(t), n - 2);
  const double b = t - static_cast<double>(i);
  const double a = 1.0 - b;
  const double yi = yv.load(row_offset + i);
  const double yi1 = yv.load(row_offset + i + 1);
  const double y2i = y2v.load(row_offset + i);
  const double y2i1 = y2v.load(row_offset + i + 1);
  wg.flops(14);
  return a * yi + b * yi1 +
         ((a * a * a - a) * y2i + (b * b * b - b) * y2i1) * (h * h) / 6.0;
}

/// Deterministic synthetic multipole component of the response density.
double rho_sample(std::size_t atom, std::size_t lm, double r) {
  return std::exp(-r * (1.0 + 0.02 * static_cast<double>(lm))) *
         (1.0 + 0.01 * static_cast<double>(atom)) /
         (1.0 + static_cast<double>(lm));
}

/// Deterministic grid-point radius for consumer work item g of a rank.
double point_radius(std::size_t rank, std::size_t g) {
  const double golden = 0.6180339887498949;
  const double frac = std::fmod(static_cast<double>(g + 131 * rank) * golden, 1.0);
  return kR0 + (kR1 - kR0) * frac;
}

struct SplineSets {
  // Flat rows: [atom][lm][radial]; rho value+y2, v value+y2.
  std::vector<double> rho_val, rho_y2, v_val, v_y2;
};

}  // namespace

std::size_t RhoPhaseConfig::spline_bytes_per_atom() const {
  // Two sets (rho_multipole_spl, delta_v_hart_part_spl), each storing value
  // and second-derivative rows per (l,m) channel.
  return 2 * 2 * lm_channels() * radial_points * sizeof(double);
}

RhoPhaseResult run_rho_phase(simt::SimtRuntime& rt, const RhoPhaseConfig& cfg,
                             FusionMode mode) {
  AEQP_CHECK(cfg.radial_points >= 8, "run_rho_phase: need >= 8 radial points");
  AEQP_CHECK(cfg.ranks_per_device >= 1, "run_rho_phase: need >= 1 rank");
  rt.stats().reset();

  RhoPhaseResult res;
  const std::size_t nlm = cfg.lm_channels();
  const std::size_t nr = cfg.radial_points;
  const double h = (kR1 - kR0) / static_cast<double>(nr - 1);
  const std::size_t rows = cfg.n_atoms * nlm;

  res.vertical_applicable =
      rt.model().has_rma &&
      cfg.spline_bytes_per_atom() <= rt.model().rma_limit_bytes;
  const FusionMode effective =
      (mode == FusionMode::VerticalFused && !res.vertical_applicable)
          ? FusionMode::Unfused
          : mode;

  SplineSets sets;
  sets.rho_val.resize(rows * nr);
  sets.rho_y2.resize(rows * nr);
  sets.v_val.resize(rows * nr);
  sets.v_y2.resize(rows * nr);

  auto produce_atom = [&](simt::WorkGroup& wg, std::size_t atom) {
    auto rho_val = rt.bind(sets.rho_val);
    auto rho_y2b = rt.bind(sets.rho_y2);
    auto v_val = rt.bind(sets.v_val);
    auto v_y2b = rt.bind(sets.v_y2);
    std::vector<double> y(nr), y2, vrow(nr);
    for (std::size_t lm = 0; lm < nlm; ++lm) {
      const std::size_t row = (atom * nlm + lm) * nr;
      for (std::size_t i = 0; i < nr; ++i) {
        y[i] = rho_sample(atom, lm, kR0 + h * static_cast<double>(i));
        rho_val.store(row + i, y[i]);
      }
      solve_natural_spline_y2(wg, h, y, y2);
      for (std::size_t i = 0; i < nr; ++i) rho_y2b.store(row + i, y2[i]);
      // Radial Hartree integration (cumulative trapezoid stands in for the
      // Adams-Moulton pass, which hartree_pm_kernel exercises in detail).
      vrow[0] = 0.0;
      for (std::size_t i = 1; i < nr; ++i)
        vrow[i] = vrow[i - 1] + 0.5 * h * (y[i] + y[i - 1]);
      wg.flops(3 * nr);
      for (std::size_t i = 0; i < nr; ++i) v_val.store(row + i, vrow[i]);
      solve_natural_spline_y2(wg, h, vrow, y2);
      for (std::size_t i = 0; i < nr; ++i) v_y2b.store(row + i, y2[i]);
      wg.issue_simt(nr, 4);
    }
  };
  // One work-group per atom; items cover (l,m) channels.
  auto producer_body = [&](simt::WorkGroup& wg) {
    produce_atom(wg, wg.group_id());
  };

  auto consume_point = [&](simt::WorkGroup& wg, const simt::GlobalBuffer& v_val,
                           const simt::GlobalBuffer& v_y2, std::size_t rank,
                           std::size_t g) {
    const double r = point_radius(rank, g);
    double acc = 0.0;
    for (std::size_t atom = 0; atom < cfg.n_atoms; ++atom)
      for (std::size_t lm = 0; lm < nlm; ++lm)
        acc += spline_eval(wg, v_val, v_y2, (atom * nlm + lm) * nr, nr, h, r);
    return acc;
  };

  const std::size_t per_rank = cfg.grid_points_per_rank;
  res.potential.assign(per_rank * cfg.ranks_per_device, 0.0);
  auto out = rt.bind(res.potential);

  switch (effective) {
    case FusionMode::Unfused: {
      // Every rank launches its own producer (redundant) and consumer; the
      // spline sets round-trip through host memory as kernel arguments.
      for (std::size_t rank = 0; rank < cfg.ranks_per_device; ++rank) {
        rt.launch(cfg.n_atoms, nlm, producer_body);
        ++res.producer_runs;
        rt.host_transfer(cfg.spline_bytes_per_atom() * cfg.n_atoms);  // download
        rt.host_transfer(cfg.spline_bytes_per_atom() * cfg.n_atoms);  // upload
        auto v_val = rt.bind(sets.v_val);
        auto v_y2 = rt.bind(sets.v_y2);
        rt.launch(1, per_rank, [&](simt::WorkGroup& wg) {
          for (std::size_t g = 0; g < per_rank; ++g)
            out.store(rank * per_rank + g, consume_point(wg, v_val, v_y2, rank, g));
          wg.issue_simt(per_rank, cfg.n_atoms * nlm);
        });
      }
      break;
    }
    case FusionMode::VerticalFused: {
      // One fused kernel per rank: produce into on-chip memory, barrier
      // (RMA gather/broadcast), consume without any host round trip.
      for (std::size_t rank = 0; rank < cfg.ranks_per_device; ++rank) {
        auto v_val = rt.bind(sets.v_val);
        auto v_y2 = rt.bind(sets.v_y2);
        rt.launch(1, per_rank, [&](simt::WorkGroup& wg) {
          for (std::size_t atom = 0; atom < cfg.n_atoms; ++atom)
            produce_atom(wg, atom);  // same kernel, producer phase
          wg.barrier();  // RMA-backed global barrier between the phases
          for (std::size_t g = 0; g < per_rank; ++g)
            out.store(rank * per_rank + g, consume_point(wg, v_val, v_y2, rank, g));
          wg.issue_simt(per_rank, cfg.n_atoms * nlm);
        });
        ++res.producer_runs;
      }
      break;
    }
    case FusionMode::HorizontalFused: {
      // One producer serves the fused consumer of all ranks; spline sets
      // stay resident in device memory (no host transfers).
      rt.launch(cfg.n_atoms, nlm, producer_body);
      ++res.producer_runs;
      auto v_val = rt.bind(sets.v_val);
      auto v_y2 = rt.bind(sets.v_y2);
      rt.launch(cfg.ranks_per_device, per_rank, [&](simt::WorkGroup& wg) {
        const std::size_t rank = wg.group_id();
        for (std::size_t g = 0; g < per_rank; ++g)
          out.store(rank * per_rank + g, consume_point(wg, v_val, v_y2, rank, g));
        wg.issue_simt(per_rank, cfg.n_atoms * nlm);
      });
      break;
    }
  }

  res.stats = rt.stats();
  return res;
}

}  // namespace aeqp::kernels
