#pragma once

/// \file density_kernels.hpp
/// The response-density (Sumup) and response-Hamiltonian (H) kernels with
/// the two Hamiltonian/density-matrix storage strategies of paper Fig. 9(b):
/// a small dense local block (locality-enhancing mapping) vs the global
/// sparse CSR matrix (legacy mapping), whose element fetches cost several
/// dependent memory accesses each (Fig. 3a).
///
/// Both storage paths compute identical physics on identical inputs; only
/// the matrix access pattern differs, isolating the effect the paper
/// measures as 7.5%-26.4% phase-level gains.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/sparse.hpp"
#include "simt/runtime.hpp"

namespace aeqp::kernels {

/// One grid point's basis support: which local orbitals are nonzero and
/// their values.
struct PointSupport {
  std::vector<std::uint32_t> indices;  ///< local (dense-block) orbital ids
  std::vector<double> values;
};

/// Synthetic Sumup/H workload: `n_points` grid points, each touching
/// `support` of `n_basis_local` local orbitals; the global matrix has
/// `n_basis_global` orbitals with the local block embedded at an offset.
struct DensityKernelWorkload {
  std::size_t n_basis_local = 64;
  std::size_t n_basis_global = 1359;   ///< paper's 49-atom ligand basis
  std::size_t n_points = 2048;
  std::size_t support = 24;            ///< orbitals per point
  std::uint64_t seed = 5;

  std::vector<PointSupport> points;
  linalg::Matrix p_dense;              ///< local dense block
  linalg::CsrMatrix p_sparse;          ///< same data inside the global CSR
  std::vector<std::size_t> local_to_global;

  /// Build the workload (deterministic in seed).
  static DensityKernelWorkload make(std::size_t n_basis_local,
                                    std::size_t n_basis_global,
                                    std::size_t n_points, std::size_t support,
                                    std::uint64_t seed = 5);
};

struct DensityKernelResult {
  std::vector<double> density;  ///< n^(1) per point
  double host_seconds = 0.0;    ///< measured wall time of the contraction
  simt::KernelStats stats;
};

/// Sumup kernel reading the dense local block (proposed mapping).
DensityKernelResult run_sumup_dense(simt::SimtRuntime& rt,
                                    const DensityKernelWorkload& w);

/// Sumup kernel fetching from the global CSR (legacy mapping).
DensityKernelResult run_sumup_sparse(simt::SimtRuntime& rt,
                                     const DensityKernelWorkload& w);

}  // namespace aeqp::kernels
