#include "kernels/batch_kernels.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace aeqp::kernels {

std::vector<BatchSupport> build_batch_supports(
    const basis::BasisSet& basis, const grid::MolecularGrid& grid,
    const std::vector<grid::Batch>& batches) {
  std::vector<BatchSupport> supports(batches.size());
  basis::PointEval ev;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    BatchSupport& sup = supports[b];
    sup.point_ids = batches[b].points;
    sup.offsets.assign(1, 0);

    // First pass: gather raw (global basis id, value) per point.
    std::vector<std::vector<std::pair<std::uint32_t, double>>> raw(
        sup.point_ids.size());
    std::map<std::uint32_t, std::uint16_t> local_of;
    for (std::size_t k = 0; k < sup.point_ids.size(); ++k) {
      basis.evaluate(grid.point(sup.point_ids[k]).pos, false, ev);
      raw[k].reserve(ev.indices.size());
      for (std::size_t i = 0; i < ev.indices.size(); ++i) {
        raw[k].emplace_back(ev.indices[i], ev.values[i]);
        local_of.emplace(ev.indices[i], 0);
      }
    }
    // Dense local index space of the batch (sorted global ids).
    AEQP_CHECK(local_of.size() < 65536, "build_batch_supports: block too large");
    sup.basis_ids.reserve(local_of.size());
    std::uint16_t next = 0;
    for (auto& [global, local] : local_of) {
      local = next++;
      sup.basis_ids.push_back(global);
    }
    // Second pass: per-point sparse rows in local indexing.
    for (auto& row : raw) {
      for (auto& [global, value] : row) {
        sup.local_index.push_back(local_of.at(global));
        sup.values.push_back(value);
      }
      sup.offsets.push_back(static_cast<std::uint32_t>(sup.local_index.size()));
    }
  }
  return supports;
}

void sumup_kernel(simt::SimtRuntime& rt, const grid::MolecularGrid& grid,
                  const std::vector<BatchSupport>& supports,
                  const linalg::Matrix& p1, std::vector<double>& n1_out) {
  AEQP_CHECK(n1_out.size() == grid.size(), "sumup_kernel: output size mismatch");
  const std::size_t nb = p1.rows();
  AEQP_CHECK(p1.cols() == nb, "sumup_kernel: density matrix must be square");

  auto out = rt.bind(n1_out);
  rt.launch(supports.size(), /*group_size=*/256, [&](simt::WorkGroup& wg) {
    const BatchSupport& sup = supports[wg.group_id()];
    const std::size_t nloc = sup.basis_ids.size();

    // Stage the batch-local dense block of P^(1) in __local memory (the
    // small dense matrix of Fig. 3(b)); falls back to a gather per element
    // if it exceeds on-chip capacity.
    const bool fits = nloc * nloc * sizeof(double) <= rt.model().onchip_bytes;
    std::span<double> block;
    std::vector<double> spill;
    if (fits) {
      block = wg.local_mem(nloc * nloc);
    } else {
      spill.assign(nloc * nloc, 0.0);
      block = spill;
    }
    for (std::size_t i = 0; i < nloc; ++i)
      for (std::size_t j = 0; j < nloc; ++j)
        block[i * nloc + j] = p1(sup.basis_ids[i], sup.basis_ids[j]);
    rt.stats().offchip_read_bytes += nloc * nloc * sizeof(double);
    wg.barrier();

    // One work-item per grid point: n = phi^T P phi over the local block.
    for (std::size_t k = 0; k < sup.point_ids.size(); ++k) {
      const std::uint32_t begin = sup.offsets[k], end = sup.offsets[k + 1];
      double acc = 0.0;
      for (std::uint32_t a = begin; a < end; ++a) {
        const double* row = block.data() + sup.local_index[a] * nloc;
        double partial = 0.0;
        for (std::uint32_t bb = begin; bb < end; ++bb)
          partial += row[sup.local_index[bb]] * sup.values[bb];
        acc += sup.values[a] * partial;
      }
      out.store(sup.point_ids[k], acc);
      wg.flops(2 * (end - begin) * (end - begin));
    }
    wg.issue_simt(sup.point_ids.size(), 8);
  });
}

void h_kernel(simt::SimtRuntime& rt, const grid::MolecularGrid& grid,
              const std::vector<BatchSupport>& supports,
              std::span<const double> v_samples, linalg::Matrix& h_out) {
  AEQP_CHECK(v_samples.size() == grid.size(), "h_kernel: sample count mismatch");
  const std::size_t nb = h_out.rows();
  AEQP_CHECK(h_out.cols() == nb, "h_kernel: output matrix must be square");

  // Batches overlap in (mu, nu), so groups stage their dense blocks here
  // and the host flushes them in batch order after the launch: the same
  // once-per-batch flush as before, but race-free under parallel groups and
  // deterministic for every thread count.
  std::vector<std::vector<double>> blocks(supports.size());

  rt.launch(supports.size(), /*group_size=*/256, [&](simt::WorkGroup& wg) {
    const BatchSupport& sup = supports[wg.group_id()];
    const std::size_t nloc = sup.basis_ids.size();

    const bool fits = nloc * nloc * sizeof(double) <= rt.model().onchip_bytes;
    if (fits) (void)wg.local_mem(nloc * nloc);  // models on-chip residency
    std::vector<double>& block = blocks[wg.group_id()];
    block.assign(nloc * nloc, 0.0);

    // Accumulate the batch's contribution in the local dense block.
    for (std::size_t k = 0; k < sup.point_ids.size(); ++k) {
      const double wv =
          grid.point(sup.point_ids[k]).weight * v_samples[sup.point_ids[k]];
      if (wv == 0.0) continue;
      const std::uint32_t begin = sup.offsets[k], end = sup.offsets[k + 1];
      for (std::uint32_t a = begin; a < end; ++a) {
        const double wa = wv * sup.values[a];
        double* row = block.data() + sup.local_index[a] * nloc;
        for (std::uint32_t bb = begin; bb < end; ++bb)
          row[sup.local_index[bb]] += wa * sup.values[bb];
      }
      wg.flops(2 * (end - begin) * (end - begin));
    }
    wg.barrier();
    rt.stats().offchip_write_bytes += nloc * nloc * sizeof(double);
    wg.issue_simt(sup.point_ids.size(), 8);
  });

  // Fixed-order reduction: flush every batch block to the global matrix in
  // batch order -- the reduced off-chip traffic the locality mapping buys.
  for (std::size_t b = 0; b < supports.size(); ++b) {
    const BatchSupport& sup = supports[b];
    const std::size_t nloc = sup.basis_ids.size();
    const std::vector<double>& block = blocks[b];
    for (std::size_t i = 0; i < nloc; ++i)
      for (std::size_t j = 0; j < nloc; ++j)
        h_out(sup.basis_ids[i], sup.basis_ids[j]) += block[i * nloc + j];
  }
}

}  // namespace aeqp::kernels
