#include "kernels/init_kernel.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace aeqp::kernels {

InitKernelInput make_init_input(std::size_t n_atoms, std::size_t n_centers,
                                std::uint64_t seed) {
  AEQP_CHECK(n_atoms >= 1, "make_init_input: need at least one atom");
  Rng rng(seed);
  InitKernelInput in;
  in.coord_center.resize(3 * n_atoms);
  for (auto& v : in.coord_center) v = rng.uniform(-50.0, 50.0);
  in.atom_list.resize(n_centers);
  for (auto& id : in.atom_list)
    id = static_cast<std::uint32_t>(rng.uniform_index(n_atoms));
  return in;
}

std::vector<double> build_rearranged_coords(const InitKernelInput& in) {
  std::vector<double> out(3 * in.atom_list.size());
  for (std::size_t i = 0; i < in.atom_list.size(); ++i)
    for (int d = 0; d < 3; ++d)
      out[3 * i + d] = in.coord_center[3 * in.atom_list[i] + d];
  return out;
}

namespace {
constexpr std::size_t kGroupSize = 128;
}

InitKernelResult run_init_kernel_indirect(simt::SimtRuntime& rt,
                                          const InitKernelInput& in) {
  InitKernelResult res;
  const std::size_t n = in.atom_list.size();
  res.center_coords.resize(3 * n);

  std::vector<double> coord_copy = in.coord_center;  // __global argument
  auto coords = rt.bind(coord_copy);
  auto out = rt.bind(res.center_coords);

  const std::size_t n_groups = (n + kGroupSize - 1) / kGroupSize;
  Timer timer;
  rt.launch(n_groups, kGroupSize, [&](simt::WorkGroup& wg) {
    const std::size_t begin = wg.group_id() * kGroupSize;
    const std::size_t end = std::min(begin + kGroupSize, n);
    for (std::size_t i = begin; i < end; ++i) {
      // The mismatch of Sec. 4.3: global center id -> local atom id -> a
      // scattered gather from the coordinate table.
      const std::uint32_t local = in.atom_list[i];
      for (int d = 0; d < 3; ++d)
        out.store(3 * i + d, coords.load_dependent(3 * local + d));
    }
    wg.issue_simt(end - begin, 3);
  });
  res.host_seconds = timer.seconds();
  return res;
}

InitKernelResult run_init_kernel_direct(simt::SimtRuntime& rt,
                                        const InitKernelInput& in,
                                        const std::vector<double>& rearranged) {
  AEQP_CHECK(rearranged.size() == 3 * in.atom_list.size(),
             "run_init_kernel_direct: rearranged table size mismatch");
  InitKernelResult res;
  const std::size_t n = in.atom_list.size();
  res.center_coords.resize(3 * n);

  std::vector<double> table = rearranged;  // __global argument
  auto coords = rt.bind(table);
  auto out = rt.bind(res.center_coords);

  const std::size_t n_groups = (n + kGroupSize - 1) / kGroupSize;
  Timer timer;
  rt.launch(n_groups, kGroupSize, [&](simt::WorkGroup& wg) {
    const std::size_t begin = wg.group_id() * kGroupSize;
    const std::size_t end = std::min(begin + kGroupSize, n);
    for (std::size_t i = begin; i < end; ++i)
      for (int d = 0; d < 3; ++d) out.store(3 * i + d, coords.load(3 * i + d));
    wg.issue_simt(end - begin, 3);
  });
  res.host_seconds = timer.seconds();
  return res;
}

}  // namespace aeqp::kernels
