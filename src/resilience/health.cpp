#include "resilience/health.hpp"

#include <cmath>

namespace aeqp::resilience {

HealthReport check_matrix_health(const linalg::Matrix& m,
                                 const HealthPolicy& policy) {
  const double* p = m.data();
  const std::size_t n = m.rows() * m.cols();
  for (std::size_t i = 0; i < n; ++i) {
    if (policy.check_finite && !std::isfinite(p[i]))
      return {false, "non-finite state entry at flat index " + std::to_string(i)};
    if (std::fabs(p[i]) > policy.max_abs_value)
      return {false, "state entry |" + std::to_string(p[i]) + "| exceeds bound " +
                         std::to_string(policy.max_abs_value)};
  }
  return {};
}

HealthReport check_iteration_health(const linalg::Matrix& state, double delta,
                                    double prev_delta,
                                    const HealthPolicy& policy) {
  if (policy.check_finite && !std::isfinite(delta))
    return {false, "non-finite residual"};
  if (prev_delta > 0.0 && delta > prev_delta * policy.max_delta_growth)
    return {false, "residual jumped from " + std::to_string(prev_delta) +
                       " to " + std::to_string(delta) + " (growth bound " +
                       std::to_string(policy.max_delta_growth) + "x)"};
  return check_matrix_health(state, policy);
}

}  // namespace aeqp::resilience
