#include "resilience/membudget.hpp"

#include <cmath>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "common/thread_ident.hpp"
#include "obs/trace.hpp"

namespace aeqp::resilience {

void OomPlan::add(const OomEvent& event) {
  AEQP_CHECK(!event.site.empty(), "OomPlan: event site must be non-empty");
  events_.push_back(event);
}

OomInjector::OomInjector(OomPlan plan) {
  for (const auto& e : plan.events()) events_.push_back(Armed{e, 0, false});
}

bool OomInjector::should_fail(const char* site, std::size_t /*request_bytes*/) {
  const int rank = thread_rank();
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.probes;
  const std::size_t invocation = invocations_[site]++;
  for (auto& armed : events_) {
    if (armed.done || armed.event.site != site) continue;
    if (armed.event.rank >= 0 && armed.event.rank != rank) continue;
    // Transient events (and the first firing of permanent ones) wait for
    // their exact planned invocation; a permanent event that already fired
    // strikes at every later matching probe, like a rank whose heap is
    // genuinely full staying full.
    if (invocation != armed.event.invocation &&
        (armed.event.transient || armed.fired == 0))
      continue;
    ++armed.fired;
    if (armed.event.transient) armed.done = true;
    ++stats_.failures_injected;
    return true;
  }
  return false;
}

OomInjectorStats OomInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t OomInjector::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& armed : events_)
    if (armed.fired == 0) ++n;
  return n;
}

std::size_t OomInjector::invocations(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = invocations_.find(site);
  return it == invocations_.end() ? 0 : it->second;
}

obs::ScopedMetricsSource register_metrics(const OomInjector& injector,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&injector, prefix = std::move(prefix)](
          std::vector<obs::MetricSample>& out) {
        const auto s = injector.stats();
        out.push_back({prefix + "/probes", static_cast<double>(s.probes)});
        out.push_back({prefix + "/failures_injected",
                       static_cast<double>(s.failures_injected)});
      });
}

// ---------------------------------------------------------------------------
// Pressure-relief reclaimer registry

namespace {

struct Reclaimer {
  std::string name;
  MemReclaimFn fn;
};

struct ReclaimerRegistry {
  std::mutex mutex;
  // Ordered by registration id so relief runs cheapest-registered-first
  // (the registration order is the shed order by contract).
  std::map<std::uint64_t, Reclaimer> entries;
  std::uint64_t next_id = 1;
};

ReclaimerRegistry& registry() {
  static ReclaimerRegistry r;
  return r;
}

}  // namespace

ScopedMemReclaimer::ScopedMemReclaimer(std::string name, MemReclaimFn fn)
    : id_(0) {
  AEQP_CHECK(static_cast<bool>(fn), "ScopedMemReclaimer: null reclaim fn");
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  id_ = r.next_id++;
  r.entries.emplace(id_, Reclaimer{std::move(name), std::move(fn)});
}

ScopedMemReclaimer::~ScopedMemReclaimer() {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.entries.erase(id_);
}

std::int64_t relieve_pressure() {
  // Snapshot under the lock, run outside it: a reclaimer may itself take
  // subsystem locks (warm cache, buddy store) and must not hold the
  // registry hostage while it evicts.
  std::vector<std::pair<std::string, MemReclaimFn>> work;
  {
    auto& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    work.reserve(r.entries.size());
    for (const auto& [id, rec] : r.entries) work.emplace_back(rec.name, rec.fn);
  }
  const std::int64_t budget = mem_budget_bytes();
  const std::int64_t soft = budget > 0 ? budget * mem_soft_percent() / 100 : 0;
  std::int64_t freed = 0;
  for (const auto& [name, fn] : work) {
    // Stop early once back under the soft watermark; with no byte ceiling
    // armed (manual relieve_pressure call) run everything.
    if (budget > 0 && mem_in_use() <= soft) break;
    const std::int64_t bytes = fn();
    if (bytes <= 0) continue;
    freed += bytes;
    obs::trace_instant("membudget/relief");
    obs::counter("membudget/relief_bytes").add(static_cast<std::uint64_t>(bytes));
    obs::counter("membudget/relief_actions").increment();
  }
  return freed;
}

std::size_t registered_reclaimer_count() {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.entries.size();
}

// ---------------------------------------------------------------------------
// Admission-time memory estimation

MemModel MemModel::default_model() {
  // Coefficients seeded from the measured gauges the fig09a bench fits
  // into BENCH_memory.json on the Light-tier test structures: the
  // replicated response matrix is O(N^2) and does NOT shrink with ranks;
  // the per-rank point-eval cache shards with the grid; spline tables are
  // replicated O(N) in distinct elements but bounded, modeled linear with
  // a small coefficient; the packed allreduce staging window is a
  // rank-count-independent constant.
  MemModel m;
  m.terms.push_back({"dfpt/p1_replicated", 2048.0, 2.0, /*per_rank=*/false});
  m.terms.push_back({"dfpt/point_cache", 96.0 * 1024.0, 1.0, /*per_rank=*/true});
  m.terms.push_back({"basis/spline_tables", 64.0 * 1024.0, 1.0,
                     /*per_rank=*/false});
  m.terms.push_back({"comm/packed_buffer", 4.0 * 1024.0 * 1024.0, 0.0,
                     /*per_rank=*/false});
  return m;
}

std::int64_t estimate_job_memory(std::size_t n_atoms, std::size_t ranks,
                                 const MemModel& model) {
  AEQP_CHECK(ranks >= 1, "estimate_job_memory: ranks must be >= 1");
  double total = 0.0;
  for (const auto& t : model.terms) {
    double bytes = t.coeff_bytes * std::pow(static_cast<double>(n_atoms),
                                            t.exponent);
    if (t.per_rank) bytes /= static_cast<double>(ranks);
    total += bytes;
  }
  return static_cast<std::int64_t>(std::ceil(total));
}

}  // namespace aeqp::resilience
