#pragma once

/// \file guards.hpp
/// Physics invariant guards: cheap, physically exact checks the all-electron
/// formulation guarantees -- electron count (integral of rho equals
/// N_electrons on the integration grid), Hermiticity of H and delta-H,
/// trace(DM * S) = N, and finiteness sweeps at phase boundaries. A silent
/// compute-side corruption that slips past ABFT (or strikes a non-ABFT
/// kernel) violates one of these within the same iteration; the guard turns
/// the eventual wrong answer into an immediate structured
/// aeqp::InvariantViolation the recovery ladder can act on (see docs/sdc.md).
///
/// Gating mirrors AEQP_TRACE exactly: the env var AEQP_GUARDS (default ON;
/// "off"/"0"/"false" disables) is read once into an atomic, and a disabled
/// guard costs one relaxed atomic load -- no scan, no allocation. Guards
/// only read; they never modify operands, so a guarded fault-free run is
/// bit-identical to an unguarded one.
///
/// Header-only on purpose: guards are called from scf, poisson, and core --
/// modules *below* resilience in the link graph -- so they must not pull
/// link-time symbols out of the resilience archive.

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <span>
#include <string>

#include "common/error.hpp"
#include "linalg/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aeqp::resilience {

namespace detail {

/// -1 = not yet initialized from the environment.
inline std::atomic<int> g_guards{-1};

inline bool init_guards_from_env() {
  const char* env = std::getenv("AEQP_GUARDS");
  int v = 1;  // default ON: trustworthiness is opt-out, not opt-in
  if (env != nullptr) {
    const std::string s(env);
    if (s == "off" || s == "0" || s == "false") v = 0;
  }
  int expected = -1;
  g_guards.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  return g_guards.load(std::memory_order_relaxed) != 0;
}

[[noreturn]] inline void raise_violation(const char* invariant,
                                         const char* site, double measured,
                                         double expected) {
  obs::counter("guards/violations").increment();
  obs::trace_instant("guard/violation");
  throw InvariantViolation(invariant, site, measured, expected);
}

inline void count_check() {
  static obs::Counter& checks = obs::counter("guards/checks");
  checks.increment();
}

}  // namespace detail

/// Whether invariant guards run (lazily initialized from AEQP_GUARDS).
/// Off-mode cost: one relaxed atomic load.
[[nodiscard]] inline bool guards_enabled() {
  const int v = detail::g_guards.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return detail::init_guards_from_env();
}

/// Programmatic override (tests, benches). Takes effect immediately.
inline void set_guards(bool on) {
  detail::g_guards.store(on ? 1 : 0, std::memory_order_relaxed);
}

/// Every element finite (no NaN/Inf). `site` must be a string literal.
inline void guard_finite(std::span<const double> values, const char* site) {
  if (!guards_enabled()) return;
  detail::count_check();
  for (double v : values)
    if (!std::isfinite(v)) detail::raise_violation("finite", site, v, 0.0);
}

inline void guard_finite(const linalg::Matrix& m, const char* site) {
  if (!guards_enabled()) return;
  guard_finite(std::span<const double>(m.data(), m.rows() * m.cols()), site);
}

/// Hermiticity (real-symmetric here): max |m_ij - m_ji| within `tol` of
/// zero, scaled by the matrix magnitude. H and delta-H are built from
/// symmetrized integrals, so any asymmetry beyond roundoff is corruption.
inline void guard_hermitian(const linalg::Matrix& m, const char* site,
                            double tol = 1e-10) {
  if (!guards_enabled()) return;
  detail::count_check();
  const std::size_t n = m.rows();
  if (n != m.cols())
    detail::raise_violation("hermitian", site, static_cast<double>(m.cols()),
                            static_cast<double>(n));
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = m(i, j) - m(j, i);
      const double a = d < 0 ? -d : d;
      if (a > worst) worst = a;
      if (!std::isfinite(d))
        detail::raise_violation("hermitian", site, d, 0.0);
    }
  const double scale = std::max(1.0, m.max_abs());
  if (worst > tol * scale)
    detail::raise_violation("hermitian", site, worst, tol * scale);
}

/// Integral of the density over the grid equals the electron count. The
/// tolerance is relative and loose (grid quadrature error dominates); a bit
/// flip in a density batch moves the integral by orders of magnitude more.
inline void guard_electron_count(double integrated, double n_electrons,
                                 const char* site, double rel_tol = 1e-2) {
  if (!guards_enabled()) return;
  detail::count_check();
  if (!std::isfinite(integrated))
    detail::raise_violation("electron_count", site, integrated, n_electrons);
  const double scale = std::max(1.0, std::abs(n_electrons));
  if (std::abs(integrated - n_electrons) > rel_tol * scale)
    detail::raise_violation("electron_count", site, integrated, n_electrons);
}

/// trace(DM * S) = N_electrons: the density matrix in a non-orthogonal
/// basis carries the electron count through the overlap metric.
inline void guard_trace_identity(const linalg::Matrix& dm,
                                 const linalg::Matrix& overlap,
                                 double n_electrons, const char* site,
                                 double rel_tol = 1e-6) {
  if (!guards_enabled()) return;
  detail::count_check();
  const std::size_t n = dm.rows();
  if (n != dm.cols() || n != overlap.rows() || n != overlap.cols())
    detail::raise_violation("trace_identity", site,
                            static_cast<double>(overlap.rows()),
                            static_cast<double>(n));
  double tr = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) tr += dm(i, j) * overlap(j, i);
  if (!std::isfinite(tr))
    detail::raise_violation("trace_identity", site, tr, n_electrons);
  const double scale = std::max(1.0, std::abs(n_electrons));
  if (std::abs(tr - n_electrons) > rel_tol * scale)
    detail::raise_violation("trace_identity", site, tr, n_electrons);
}

}  // namespace aeqp::resilience
