#include "resilience/checkpoint.hpp"

#include <array>
#include <atomic>
#include <cstring>
#include <fstream>
#include <functional>
#include <thread>

#include "common/error.hpp"
#include "obs/memaudit.hpp"
#include "obs/trace.hpp"
#include "resilience/membudget.hpp"

namespace aeqp::resilience {

namespace {

constexpr std::uint32_t kMagic = 0x41455150;  // 'AEQP'
constexpr std::uint32_t kKindCpscf = 1;
constexpr std::uint32_t kKindScf = 2;
constexpr std::uint32_t kKindRaw = 3;  // verbatim blob (buddy spill tier)

/// Little binary archive; all multi-byte values native-endian (the format
/// version gates any future change).
class ByteWriter {
public:
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i32(std::int32_t v) { put_raw(&v, sizeof(v)); }
  void put_f64(double v) { put_raw(&v, sizeof(v)); }
  void put_doubles(const double* p, std::size_t n) {
    put_u64(n);
    put_raw(p, n * sizeof(double));
  }
  void put_matrix(const linalg::Matrix& m) {
    put_u64(m.rows());
    put_u64(m.cols());
    put_raw(m.data(), m.rows() * m.cols() * sizeof(double));
  }
  [[nodiscard]] const std::vector<unsigned char>& bytes() const { return buf_; }

private:
  void put_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<unsigned char> buf_;
};

class ByteReader {
public:
  ByteReader(std::span<const unsigned char> data, std::string context)
      : data_(data), context_(std::move(context)) {}
  std::uint32_t get_u32() { return get<std::uint32_t>(); }
  std::uint64_t get_u64() { return get<std::uint64_t>(); }
  std::int32_t get_i32() { return get<std::int32_t>(); }
  double get_f64() { return get<double>(); }
  std::vector<double> get_doubles() {
    const std::uint64_t n = get_u64();
    std::vector<double> v(n);
    get_raw(v.data(), n * sizeof(double));
    return v;
  }
  linalg::Matrix get_matrix() {
    const std::uint64_t rows = get_u64();
    const std::uint64_t cols = get_u64();
    linalg::Matrix m(rows, cols);
    get_raw(m.data(), rows * cols * sizeof(double));
    return m;
  }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

private:
  template <class T>
  T get() {
    T v;
    get_raw(&v, sizeof(v));
    return v;
  }
  void get_raw(void* p, std::size_t n) {
    AEQP_CHECK(pos_ + n <= data_.size(),
               context_ + ": checkpoint payload truncated");
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }
  std::span<const unsigned char> data_;
  std::string context_;
  std::size_t pos_ = 0;
};

/// Wrap a payload in the framed format: header + payload + CRC.
std::vector<unsigned char> frame(std::uint32_t kind,
                                 const std::vector<unsigned char>& payload) {
  ByteWriter out;
  out.put_u32(kMagic);
  out.put_u32(kCheckpointFormatVersion);
  out.put_u32(kind);
  out.put_u64(payload.size());
  std::vector<unsigned char> bytes = out.bytes();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32(payload);
  const auto* crc_bytes = reinterpret_cast<const unsigned char*>(&crc);
  bytes.insert(bytes.end(), crc_bytes, crc_bytes + sizeof(crc));
  return bytes;
}

/// Validate a framed blob (magic, version, kind, length, CRC) and return
/// the payload bytes. `context` names the blob in error messages.
std::vector<unsigned char> validate_frame(std::span<const unsigned char> bytes,
                                          std::uint32_t expected_kind,
                                          const std::string& context) {
  const std::size_t header_bytes = 3 * sizeof(std::uint32_t) + sizeof(std::uint64_t);
  AEQP_CHECK(bytes.size() >= header_bytes + sizeof(std::uint32_t),
             "CheckpointStore: " + context + " is truncated");
  ByteReader header(std::span(bytes.data(), header_bytes), context);
  AEQP_CHECK(header.get_u32() == kMagic,
             "CheckpointStore: " + context + " is not an AEQP checkpoint");
  const std::uint32_t version = header.get_u32();
  AEQP_CHECK(version == kCheckpointFormatVersion,
             "CheckpointStore: " + context + " has format version " +
                 std::to_string(version) + ", expected " +
                 std::to_string(kCheckpointFormatVersion));
  const std::uint32_t kind = header.get_u32();
  AEQP_CHECK(kind == expected_kind,
             "CheckpointStore: " + context + " holds kind " +
                 std::to_string(kind) + ", expected " +
                 std::to_string(expected_kind));
  const std::uint64_t payload_size = header.get_u64();
  AEQP_CHECK(bytes.size() == header_bytes + payload_size + sizeof(std::uint32_t),
             "CheckpointStore: " + context + " has inconsistent length");
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + header_bytes + payload_size,
              sizeof(stored_crc));
  const std::uint32_t actual_crc =
      crc32(std::span(bytes.data() + header_bytes, payload_size));
  AEQP_CHECK(stored_crc == actual_crc,
             "CheckpointStore: CRC mismatch in " + context +
                 " (stored " + std::to_string(stored_crc) + ", computed " +
                 std::to_string(actual_crc) + "): checkpoint is corrupt");
  return {bytes.begin() + static_cast<std::ptrdiff_t>(header_bytes),
          bytes.begin() + static_cast<std::ptrdiff_t>(header_bytes + payload_size)};
}

void write_file_atomic(const std::filesystem::path& path, std::uint32_t kind,
                       const std::vector<unsigned char>& payload) {
  // Unique temp name per write: a counter distinguishes concurrent writers
  // inside this process (simulated ranks are threads), the thread id
  // distinguishes writers racing across restarts of the same counter.
  static std::atomic<std::uint64_t> write_nonce{0};
  const std::uint64_t nonce =
      write_nonce.fetch_add(1, std::memory_order_relaxed) ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 20);
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(nonce);
  const std::vector<unsigned char> bytes = frame(kind, payload);
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      AEQP_CHECK(out.good(), "CheckpointStore: cannot open " + tmp.string());
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      out.flush();
      AEQP_CHECK(out.good(),
                 "CheckpointStore: write failed for " + tmp.string());
      out.close();
      AEQP_CHECK(out.good(),
                 "CheckpointStore: close failed for " + tmp.string());
    }
    // Atomic publish: the checkpoint either exists complete or not at all.
    std::filesystem::rename(tmp, path);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);  // best-effort: drop the partial temp
    throw;
  }
}

std::vector<unsigned char> read_file_validated(const std::filesystem::path& path,
                                               std::uint32_t expected_kind) {
  std::ifstream in(path, std::ios::binary);
  AEQP_CHECK(in.good(), "CheckpointStore: cannot open " + path.string());
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  return validate_frame(bytes, expected_kind, path.string());
}

std::vector<unsigned char> encode(const CpscfCheckpoint& ckpt) {
  ByteWriter w;
  w.put_i32(ckpt.direction);
  w.put_i32(ckpt.iteration);
  w.put_f64(ckpt.mixing);
  w.put_f64(ckpt.last_delta);
  w.put_matrix(ckpt.p1);
  return w.bytes();
}

std::vector<unsigned char> encode(const ScfCheckpoint& ckpt) {
  ByteWriter w;
  w.put_i32(ckpt.iteration);
  w.put_f64(ckpt.last_delta);
  w.put_matrix(ckpt.density_matrix);
  w.put_u64(ckpt.diis_history.size());
  for (const auto& [h, e] : ckpt.diis_history) {
    w.put_matrix(h);
    w.put_matrix(e);
  }
  return w.bytes();
}

CpscfCheckpoint decode_cpscf(std::span<const unsigned char> payload,
                             const std::string& context) {
  ByteReader r(payload, context);
  CpscfCheckpoint ckpt;
  ckpt.direction = r.get_i32();
  ckpt.iteration = r.get_i32();
  ckpt.mixing = r.get_f64();
  ckpt.last_delta = r.get_f64();
  ckpt.p1 = r.get_matrix();
  AEQP_CHECK(r.exhausted(), "CheckpointStore: trailing bytes in " + context);
  return ckpt;
}

ScfCheckpoint decode_scf(std::span<const unsigned char> payload,
                         const std::string& context) {
  ByteReader r(payload, context);
  ScfCheckpoint ckpt;
  ckpt.iteration = r.get_i32();
  ckpt.last_delta = r.get_f64();
  ckpt.density_matrix = r.get_matrix();
  const std::uint64_t n = r.get_u64();
  ckpt.diis_history.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    linalg::Matrix h = r.get_matrix();
    linalg::Matrix e = r.get_matrix();
    ckpt.diis_history.emplace_back(std::move(h), std::move(e));
  }
  AEQP_CHECK(r.exhausted(), "CheckpointStore: trailing bytes in " + context);
  return ckpt;
}

}  // namespace

CheckpointStore::CheckpointStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
}

std::filesystem::path CheckpointStore::path_of(const std::string& key) const {
  AEQP_CHECK(!key.empty() && key.find('/') == std::string::npos,
             "CheckpointStore: invalid key '" + key + "'");
  return directory_ / (key + ".ckpt");
}

std::vector<unsigned char> serialize(const CpscfCheckpoint& ckpt) {
  // Governor probe before the frame is materialized: the payload is
  // dominated by P^(1), so the estimate is sharp to within the header.
  oom_probe("resilience/checkpoint_frame",
            ckpt.p1.rows() * ckpt.p1.cols() * sizeof(double) + 64);
  auto blob = frame(kKindCpscf, encode(ckpt));
  // Frames are transient (handed to the buddy ring or a writer and then
  // dropped), so only the high-water mark is meaningful.
  obs::mem_peak("resilience/checkpoint_frame",
                static_cast<std::int64_t>(blob.size()));
  return blob;
}

std::vector<unsigned char> serialize(const ScfCheckpoint& ckpt) {
  auto blob = frame(kKindScf, encode(ckpt));
  obs::mem_peak("resilience/checkpoint_frame",
                static_cast<std::int64_t>(blob.size()));
  return blob;
}

CpscfCheckpoint deserialize_cpscf(std::span<const unsigned char> blob,
                                  const std::string& context) {
  return decode_cpscf(validate_frame(blob, kKindCpscf, context), context);
}

ScfCheckpoint deserialize_scf(std::span<const unsigned char> blob,
                              const std::string& context) {
  return decode_scf(validate_frame(blob, kKindScf, context), context);
}

void CheckpointStore::save(const std::string& key,
                           const CpscfCheckpoint& ckpt) const {
  write_file_atomic(path_of(key), kKindCpscf, encode(ckpt));
  obs::trace_instant("checkpoint/save");
}

void CheckpointStore::save(const std::string& key,
                           const ScfCheckpoint& ckpt) const {
  write_file_atomic(path_of(key), kKindScf, encode(ckpt));
  obs::trace_instant("checkpoint/save");
}

CpscfCheckpoint CheckpointStore::load_cpscf(const std::string& key) const {
  const auto payload = read_file_validated(path_of(key), kKindCpscf);
  CpscfCheckpoint ckpt = decode_cpscf(payload, path_of(key).string());
  obs::trace_instant("checkpoint/load");
  return ckpt;
}

ScfCheckpoint CheckpointStore::load_scf(const std::string& key) const {
  const auto payload = read_file_validated(path_of(key), kKindScf);
  ScfCheckpoint ckpt = decode_scf(payload, path_of(key).string());
  obs::trace_instant("checkpoint/load");
  return ckpt;
}

std::optional<CpscfCheckpoint> CheckpointStore::try_load_cpscf(
    const std::string& key) const {
  if (!exists(key)) return std::nullopt;
  return load_cpscf(key);
}

std::optional<ScfCheckpoint> CheckpointStore::try_load_scf(
    const std::string& key) const {
  if (!exists(key)) return std::nullopt;
  return load_scf(key);
}

void CheckpointStore::save_blob(const std::string& key,
                                std::span<const unsigned char> blob) const {
  write_file_atomic(path_of(key), kKindRaw,
                    std::vector<unsigned char>(blob.begin(), blob.end()));
  obs::trace_instant("checkpoint/save_blob");
}

std::optional<std::vector<unsigned char>> CheckpointStore::try_load_blob(
    const std::string& key) const {
  if (!exists(key)) return std::nullopt;
  auto payload = read_file_validated(path_of(key), kKindRaw);
  obs::trace_instant("checkpoint/load_blob");
  return payload;
}

bool CheckpointStore::exists(const std::string& key) const {
  return std::filesystem::exists(path_of(key));
}

bool CheckpointStore::remove(const std::string& key) const {
  std::error_code ec;
  const bool removed = std::filesystem::remove(path_of(key), ec);
  AEQP_CHECK(!ec, "CheckpointStore: cannot remove " + path_of(key).string() +
                      ": " + ec.message());
  return removed;
}

CheckpointStore CheckpointStore::scoped(const std::string& ns) const {
  AEQP_CHECK(!ns.empty() && ns.find('/') == std::string::npos &&
                 ns.find('\\') == std::string::npos && ns != "." &&
                 ns != "..",
             "CheckpointStore: invalid namespace '" + ns + "'");
  return CheckpointStore(directory_ / ns);
}

std::size_t CheckpointStore::clear() const {
  std::size_t removed = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(directory_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string name = it->path().filename().string();
    // Checkpoints plus any stale temp file a killed writer left behind.
    if (name.find(".ckpt") == std::string::npos) continue;
    std::error_code rm;
    if (std::filesystem::remove(it->path(), rm)) ++removed;
    AEQP_CHECK(!rm, "CheckpointStore: cannot remove " + it->path().string() +
                        ": " + rm.message());
  }
  AEQP_CHECK(!ec, "CheckpointStore: cannot enumerate " + directory_.string() +
                      ": " + ec.message());
  return removed;
}

}  // namespace aeqp::resilience
