#include "resilience/checkpoint.hpp"

#include <array>
#include <cstring>
#include <fstream>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace aeqp::resilience {

namespace {

constexpr std::uint32_t kMagic = 0x41455150;  // 'AEQP'
constexpr std::uint32_t kKindCpscf = 1;
constexpr std::uint32_t kKindScf = 2;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// Little binary archive; all multi-byte values native-endian (the format
/// version gates any future change).
class ByteWriter {
public:
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i32(std::int32_t v) { put_raw(&v, sizeof(v)); }
  void put_f64(double v) { put_raw(&v, sizeof(v)); }
  void put_doubles(const double* p, std::size_t n) {
    put_u64(n);
    put_raw(p, n * sizeof(double));
  }
  void put_matrix(const linalg::Matrix& m) {
    put_u64(m.rows());
    put_u64(m.cols());
    put_raw(m.data(), m.rows() * m.cols() * sizeof(double));
  }
  [[nodiscard]] const std::vector<unsigned char>& bytes() const { return buf_; }

private:
  void put_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<unsigned char> buf_;
};

class ByteReader {
public:
  ByteReader(std::span<const unsigned char> data, std::string context)
      : data_(data), context_(std::move(context)) {}
  std::uint32_t get_u32() { return get<std::uint32_t>(); }
  std::uint64_t get_u64() { return get<std::uint64_t>(); }
  std::int32_t get_i32() { return get<std::int32_t>(); }
  double get_f64() { return get<double>(); }
  std::vector<double> get_doubles() {
    const std::uint64_t n = get_u64();
    std::vector<double> v(n);
    get_raw(v.data(), n * sizeof(double));
    return v;
  }
  linalg::Matrix get_matrix() {
    const std::uint64_t rows = get_u64();
    const std::uint64_t cols = get_u64();
    linalg::Matrix m(rows, cols);
    get_raw(m.data(), rows * cols * sizeof(double));
    return m;
  }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

private:
  template <class T>
  T get() {
    T v;
    get_raw(&v, sizeof(v));
    return v;
  }
  void get_raw(void* p, std::size_t n) {
    AEQP_CHECK(pos_ + n <= data_.size(),
               context_ + ": checkpoint payload truncated");
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }
  std::span<const unsigned char> data_;
  std::string context_;
  std::size_t pos_ = 0;
};

void write_file_atomic(const std::filesystem::path& path, std::uint32_t kind,
                       const std::vector<unsigned char>& payload) {
  ByteWriter header;
  header.put_u32(kMagic);
  header.put_u32(kCheckpointFormatVersion);
  header.put_u32(kind);
  header.put_u64(payload.size());

  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    AEQP_CHECK(out.good(), "CheckpointStore: cannot open " + tmp.string());
    out.write(reinterpret_cast<const char*>(header.bytes().data()),
              static_cast<std::streamsize>(header.bytes().size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    const std::uint32_t crc = crc32(payload);
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.flush();
    AEQP_CHECK(out.good(), "CheckpointStore: write failed for " + tmp.string());
  }
  // Atomic publish: the checkpoint either exists complete or not at all.
  std::filesystem::rename(tmp, path);
}

std::vector<unsigned char> read_file_validated(const std::filesystem::path& path,
                                               std::uint32_t expected_kind) {
  std::ifstream in(path, std::ios::binary);
  AEQP_CHECK(in.good(), "CheckpointStore: cannot open " + path.string());
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  const std::size_t header_bytes = 3 * sizeof(std::uint32_t) + sizeof(std::uint64_t);
  AEQP_CHECK(bytes.size() >= header_bytes + sizeof(std::uint32_t),
             "CheckpointStore: " + path.string() + " is truncated");
  ByteReader header(std::span(bytes.data(), header_bytes), path.string());
  AEQP_CHECK(header.get_u32() == kMagic,
             "CheckpointStore: " + path.string() + " is not an AEQP checkpoint");
  const std::uint32_t version = header.get_u32();
  AEQP_CHECK(version == kCheckpointFormatVersion,
             "CheckpointStore: " + path.string() + " has format version " +
                 std::to_string(version) + ", expected " +
                 std::to_string(kCheckpointFormatVersion));
  const std::uint32_t kind = header.get_u32();
  AEQP_CHECK(kind == expected_kind,
             "CheckpointStore: " + path.string() + " holds kind " +
                 std::to_string(kind) + ", expected " +
                 std::to_string(expected_kind));
  const std::uint64_t payload_size = header.get_u64();
  AEQP_CHECK(bytes.size() == header_bytes + payload_size + sizeof(std::uint32_t),
             "CheckpointStore: " + path.string() + " has inconsistent length");
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + header_bytes + payload_size,
              sizeof(stored_crc));
  const std::uint32_t actual_crc =
      crc32(std::span(bytes.data() + header_bytes, payload_size));
  AEQP_CHECK(stored_crc == actual_crc,
             "CheckpointStore: CRC mismatch in " + path.string() +
                 " (stored " + std::to_string(stored_crc) + ", computed " +
                 std::to_string(actual_crc) + "): checkpoint is corrupt");
  return {bytes.begin() + static_cast<std::ptrdiff_t>(header_bytes),
          bytes.begin() + static_cast<std::ptrdiff_t>(header_bytes + payload_size)};
}

}  // namespace

std::uint32_t crc32(std::span<const unsigned char> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xffffffffu;
  for (unsigned char byte : data)
    c = crc_table()[(c ^ byte) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

CheckpointStore::CheckpointStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
}

std::filesystem::path CheckpointStore::path_of(const std::string& key) const {
  AEQP_CHECK(!key.empty() && key.find('/') == std::string::npos,
             "CheckpointStore: invalid key '" + key + "'");
  return directory_ / (key + ".ckpt");
}

void CheckpointStore::save(const std::string& key,
                           const CpscfCheckpoint& ckpt) const {
  ByteWriter w;
  w.put_i32(ckpt.direction);
  w.put_i32(ckpt.iteration);
  w.put_f64(ckpt.mixing);
  w.put_f64(ckpt.last_delta);
  w.put_matrix(ckpt.p1);
  write_file_atomic(path_of(key), kKindCpscf, w.bytes());
  obs::trace_instant("checkpoint/save");
}

void CheckpointStore::save(const std::string& key,
                           const ScfCheckpoint& ckpt) const {
  ByteWriter w;
  w.put_i32(ckpt.iteration);
  w.put_f64(ckpt.last_delta);
  w.put_matrix(ckpt.density_matrix);
  w.put_u64(ckpt.diis_history.size());
  for (const auto& [h, e] : ckpt.diis_history) {
    w.put_matrix(h);
    w.put_matrix(e);
  }
  write_file_atomic(path_of(key), kKindScf, w.bytes());
  obs::trace_instant("checkpoint/save");
}

CpscfCheckpoint CheckpointStore::load_cpscf(const std::string& key) const {
  const auto payload = read_file_validated(path_of(key), kKindCpscf);
  ByteReader r(payload, path_of(key).string());
  CpscfCheckpoint ckpt;
  ckpt.direction = r.get_i32();
  ckpt.iteration = r.get_i32();
  ckpt.mixing = r.get_f64();
  ckpt.last_delta = r.get_f64();
  ckpt.p1 = r.get_matrix();
  AEQP_CHECK(r.exhausted(), "CheckpointStore: trailing bytes in " + key);
  obs::trace_instant("checkpoint/load");
  return ckpt;
}

ScfCheckpoint CheckpointStore::load_scf(const std::string& key) const {
  const auto payload = read_file_validated(path_of(key), kKindScf);
  ByteReader r(payload, path_of(key).string());
  ScfCheckpoint ckpt;
  ckpt.iteration = r.get_i32();
  ckpt.last_delta = r.get_f64();
  ckpt.density_matrix = r.get_matrix();
  const std::uint64_t n = r.get_u64();
  ckpt.diis_history.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    linalg::Matrix h = r.get_matrix();
    linalg::Matrix e = r.get_matrix();
    ckpt.diis_history.emplace_back(std::move(h), std::move(e));
  }
  AEQP_CHECK(r.exhausted(), "CheckpointStore: trailing bytes in " + key);
  obs::trace_instant("checkpoint/load");
  return ckpt;
}

std::optional<CpscfCheckpoint> CheckpointStore::try_load_cpscf(
    const std::string& key) const {
  if (!exists(key)) return std::nullopt;
  return load_cpscf(key);
}

std::optional<ScfCheckpoint> CheckpointStore::try_load_scf(
    const std::string& key) const {
  if (!exists(key)) return std::nullopt;
  return load_scf(key);
}

bool CheckpointStore::exists(const std::string& key) const {
  return std::filesystem::exists(path_of(key));
}

void CheckpointStore::remove(const std::string& key) const {
  std::filesystem::remove(path_of(key));
}

}  // namespace aeqp::resilience
