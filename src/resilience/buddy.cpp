#include "resilience/buddy.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "obs/memaudit.hpp"
#include "obs/trace.hpp"
#include "resilience/membudget.hpp"

namespace aeqp::resilience {

namespace {

/// Sanity ceiling for an announced blob size. A corrupted size broadcast
/// (fault injection, bad memory) must not turn into a multi-terabyte
/// allocation; checkpoint blobs at any realistic scale sit far below this.
constexpr double kMaxBlobBytes = 256.0 * 1024.0 * 1024.0;

}  // namespace

BuddyReplicator::BuddyReplicator(std::size_t world_size)
    : world_size_(world_size), blobs_(world_size) {
  AEQP_CHECK(world_size >= 1, "BuddyReplicator: need at least one rank");
}

void BuddyReplicator::replicate(parallel::Communicator& comm,
                                std::span<const unsigned char> blob) {
  AEQP_TRACE_SCOPE("buddy/replicate");
  const std::size_t world = comm.size();
  // Deterministic schedule: slot by slot, announce the blob size, then move
  // the payload (bytes packed into doubles -- the collective layer's
  // currency). Every rank takes part in every broadcast, so the collective
  // sequence is identical on all ranks and fault plans stay addressable.
  for (std::size_t s = 0; s < world; ++s) {
    std::vector<double> size_msg{static_cast<double>(blob.size())};
    comm.broadcast(size_msg, s);
    // A corrupted announcement (NaN, negative, fractional, absurd) is the
    // same on every rank -- the broadcast made it uniform -- so all ranks
    // skip the slot together and the collective schedule stays aligned.
    // The round simply doesn't refresh this replica; a garbled payload
    // that slips through is caught by the frame CRC at restore time.
    const double announced = size_msg[0];
    if (!(announced >= 0.0) || announced != std::floor(announced) ||
        announced > kMaxBlobBytes) {
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.slots_skipped;
      }
      continue;
    }
    const auto nbytes = static_cast<std::size_t>(announced);
    std::vector<double> packed((nbytes + sizeof(double) - 1) / sizeof(double),
                               0.0);
    if (comm.rank() == s && nbytes > 0)
      std::memcpy(packed.data(), blob.data(), std::min(nbytes, blob.size()));
    comm.broadcast(packed, s);

    const std::size_t buddy = (s + 1) % world;
    if (comm.rank() == buddy && nbytes > 0) {
      // Governor probe before this rank commits replica memory; a breach
      // surfaces as a structured fault the recovery ladder relieves (e.g.
      // by spilling the very replicas this is about to grow).
      oom_probe("resilience/buddy_replicas", nbytes);
      BuddyBlob stored;
      stored.holder = comm.original_rank();
      stored.bytes.resize(nbytes);
      std::memcpy(stored.bytes.data(), packed.data(), nbytes);
      const std::size_t owner = comm.original_rank_of(s);
      std::lock_guard<std::mutex> lock(mutex_);
      AEQP_CHECK(owner < blobs_.size(),
                 "BuddyReplicator: original rank out of range");
      // Delta-track resident replica bytes: a refresh replaces the slot.
      obs::mem_track(
          "resilience/buddy_replicas",
          static_cast<std::int64_t>(nbytes) -
              static_cast<std::int64_t>(
                  blobs_[owner] ? blobs_[owner]->bytes.size() : 0));
      blobs_[owner] = std::move(stored);
      ++stats_.blobs_mirrored;
      stats_.bytes_mirrored += nbytes;
    }
  }
  if (comm.rank() == 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rounds;
  }
}

std::optional<BuddyBlob> BuddyReplicator::blob_of(
    std::size_t original_rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (original_rank >= blobs_.size()) return std::nullopt;
  const auto& slot = blobs_[original_rank];
  if (!slot || !slot->spilled) return slot;
  // Spilled replica: reload the framed bytes from the spill store. A
  // missing or corrupt spill file degrades to "no replica" (the recovery
  // driver then falls back to a fresh start) rather than throwing from a
  // read-only query.
  if (spill_store_ == nullptr) return std::nullopt;
  try {
    auto bytes = spill_store_->try_load_blob(spill_key(original_rank));
    if (!bytes) return std::nullopt;
    BuddyBlob out;
    out.holder = slot->holder;
    out.bytes = std::move(*bytes);
    return out;
  } catch (const Error&) {
    return std::nullopt;
  }
}

std::size_t BuddyReplicator::drop_holder(std::size_t original_rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  for (auto& blob : blobs_) {
    if (blob && blob->holder == original_rank) {
      // Spilled replicas outlive their holder: the bytes are on shared
      // disk, not in the dead rank's memory.
      if (blob->spilled) continue;
      obs::mem_track("resilience/buddy_replicas",
                     -static_cast<std::int64_t>(blob->bytes.size()));
      blob.reset();
      ++dropped;
    }
  }
  return dropped;
}

void BuddyReplicator::set_spill_store(const CheckpointStore* store) {
  std::lock_guard<std::mutex> lock(mutex_);
  spill_store_ = store;
}

std::int64_t BuddyReplicator::spill() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spill_store_ == nullptr) return 0;
  std::int64_t freed = 0;
  for (std::size_t owner = 0; owner < blobs_.size(); ++owner) {
    auto& blob = blobs_[owner];
    if (!blob || blob->spilled || blob->bytes.empty()) continue;
    spill_store_->save_blob(spill_key(owner), blob->bytes);
    const auto bytes = static_cast<std::int64_t>(blob->bytes.size());
    obs::mem_track("resilience/buddy_replicas", -bytes);
    blob->bytes.clear();
    blob->bytes.shrink_to_fit();
    blob->spilled = true;
    freed += bytes;
    ++stats_.blobs_spilled;
    stats_.bytes_spilled += static_cast<std::size_t>(bytes);
  }
  if (freed > 0) obs::trace_instant("buddy/spill");
  return freed;
}

std::string BuddyReplicator::spill_key(std::size_t original_rank) {
  return "buddy-spill-" + std::to_string(original_rank);
}

BuddyReplicatorStats BuddyReplicator::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

obs::ScopedMetricsSource register_metrics(const BuddyReplicator& replicator,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&replicator,
       prefix = std::move(prefix)](std::vector<obs::MetricSample>& out) {
        const BuddyReplicatorStats s = replicator.stats();
        out.push_back({prefix + "/rounds", static_cast<double>(s.rounds)});
        out.push_back(
            {prefix + "/blobs_mirrored", static_cast<double>(s.blobs_mirrored)});
        out.push_back(
            {prefix + "/bytes_mirrored", static_cast<double>(s.bytes_mirrored)});
        out.push_back(
            {prefix + "/slots_skipped", static_cast<double>(s.slots_skipped)});
        out.push_back(
            {prefix + "/blobs_spilled", static_cast<double>(s.blobs_spilled)});
        out.push_back(
            {prefix + "/bytes_spilled", static_cast<double>(s.bytes_spilled)});
      });
}

}  // namespace aeqp::resilience
