#include "resilience/buddy.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "obs/memaudit.hpp"
#include "obs/trace.hpp"

namespace aeqp::resilience {

namespace {

/// Sanity ceiling for an announced blob size. A corrupted size broadcast
/// (fault injection, bad memory) must not turn into a multi-terabyte
/// allocation; checkpoint blobs at any realistic scale sit far below this.
constexpr double kMaxBlobBytes = 256.0 * 1024.0 * 1024.0;

}  // namespace

BuddyReplicator::BuddyReplicator(std::size_t world_size)
    : world_size_(world_size), blobs_(world_size) {
  AEQP_CHECK(world_size >= 1, "BuddyReplicator: need at least one rank");
}

void BuddyReplicator::replicate(parallel::Communicator& comm,
                                std::span<const unsigned char> blob) {
  AEQP_TRACE_SCOPE("buddy/replicate");
  const std::size_t world = comm.size();
  // Deterministic schedule: slot by slot, announce the blob size, then move
  // the payload (bytes packed into doubles -- the collective layer's
  // currency). Every rank takes part in every broadcast, so the collective
  // sequence is identical on all ranks and fault plans stay addressable.
  for (std::size_t s = 0; s < world; ++s) {
    std::vector<double> size_msg{static_cast<double>(blob.size())};
    comm.broadcast(size_msg, s);
    // A corrupted announcement (NaN, negative, fractional, absurd) is the
    // same on every rank -- the broadcast made it uniform -- so all ranks
    // skip the slot together and the collective schedule stays aligned.
    // The round simply doesn't refresh this replica; a garbled payload
    // that slips through is caught by the frame CRC at restore time.
    const double announced = size_msg[0];
    if (!(announced >= 0.0) || announced != std::floor(announced) ||
        announced > kMaxBlobBytes) {
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.slots_skipped;
      }
      continue;
    }
    const auto nbytes = static_cast<std::size_t>(announced);
    std::vector<double> packed((nbytes + sizeof(double) - 1) / sizeof(double),
                               0.0);
    if (comm.rank() == s && nbytes > 0)
      std::memcpy(packed.data(), blob.data(), std::min(nbytes, blob.size()));
    comm.broadcast(packed, s);

    const std::size_t buddy = (s + 1) % world;
    if (comm.rank() == buddy && nbytes > 0) {
      BuddyBlob stored;
      stored.holder = comm.original_rank();
      stored.bytes.resize(nbytes);
      std::memcpy(stored.bytes.data(), packed.data(), nbytes);
      const std::size_t owner = comm.original_rank_of(s);
      std::lock_guard<std::mutex> lock(mutex_);
      AEQP_CHECK(owner < blobs_.size(),
                 "BuddyReplicator: original rank out of range");
      // Delta-track resident replica bytes: a refresh replaces the slot.
      obs::mem_track(
          "resilience/buddy_replicas",
          static_cast<std::int64_t>(nbytes) -
              static_cast<std::int64_t>(
                  blobs_[owner] ? blobs_[owner]->bytes.size() : 0));
      blobs_[owner] = std::move(stored);
      ++stats_.blobs_mirrored;
      stats_.bytes_mirrored += nbytes;
    }
  }
  if (comm.rank() == 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rounds;
  }
}

std::optional<BuddyBlob> BuddyReplicator::blob_of(
    std::size_t original_rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (original_rank >= blobs_.size()) return std::nullopt;
  return blobs_[original_rank];
}

std::size_t BuddyReplicator::drop_holder(std::size_t original_rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  for (auto& blob : blobs_) {
    if (blob && blob->holder == original_rank) {
      obs::mem_track("resilience/buddy_replicas",
                     -static_cast<std::int64_t>(blob->bytes.size()));
      blob.reset();
      ++dropped;
    }
  }
  return dropped;
}

BuddyReplicatorStats BuddyReplicator::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

obs::ScopedMetricsSource register_metrics(const BuddyReplicator& replicator,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&replicator,
       prefix = std::move(prefix)](std::vector<obs::MetricSample>& out) {
        const BuddyReplicatorStats s = replicator.stats();
        out.push_back({prefix + "/rounds", static_cast<double>(s.rounds)});
        out.push_back(
            {prefix + "/blobs_mirrored", static_cast<double>(s.blobs_mirrored)});
        out.push_back(
            {prefix + "/bytes_mirrored", static_cast<double>(s.bytes_mirrored)});
        out.push_back(
            {prefix + "/slots_skipped", static_cast<double>(s.slots_skipped)});
      });
}

}  // namespace aeqp::resilience
