#pragma once

/// \file recovery.hpp
/// Fault recovery for the DFPT solvers. The RecoveryDriver wraps a CPSCF
/// run in a bounded retry loop: every iteration is health-validated and
/// checkpointed through the solver's observer hook; a detected fault
/// (numerical poisoning, rank failure, collective timeout) rolls the run
/// back to the last good checkpoint and retries, degrading gracefully to a
/// damped mixing factor when faults repeat. A transient fault therefore
/// costs only the iterations since the last checkpoint, and the recovered
/// trajectory of the first retry is bit-identical to a fault-free run.
///
/// Silent data corruption (docs/sdc.md) enters the same ladder below the
/// rollback rung: ABFT-checksummed matmuls correct single-element product
/// corruption in place (no rollback at all), non-finite Sumup batches are
/// recomputed locally, and what escapes both -- an InvariantViolation from
/// a physics guard, an AbftError for multi-element corruption, or a
/// PayloadCorruption from a verified collective -- is caught here and
/// treated as a fault: rollback to the last checkpoint and retry.
///
/// With `RecoveryOptions::elastic` the parallel front-end adds a further
/// escalation rung for PERMANENT rank failures (a dead node re-fails every
/// retry at the same world size):
///
///   correct in place  ->  local recompute  ->  retry  ->  damped retry
///     ->  rebalance around stragglers  ->  shrink + buddy-restore
///       + re-map + resume
///
/// The rebalance rung fires BEFORE any shrink: a rank that is merely slow
/// (straggler, detected by the per-rank arrival-lag ledger or surfaced by
/// an adaptive collective deadline) keeps its place in the world, and the
/// grid batches are re-homed around its measured speed with
/// mapping::rebalance_for_slow_ranks -- full world size, no renumbering,
/// bit-identical results. Only a rank that actually FAILS repeatedly is
/// shrunk away.
///
/// A rank is classified permanent when the same original rank fails on
/// `permanent_failure_threshold` consecutive attempts. The driver then
/// excludes it from the active world (ULFM shrink analogue), restores the
/// last checkpoint from an in-memory buddy replica when the dead rank took
/// the file checkpoint down with it, re-homes the dead rank's grid batches
/// onto survivors with the locality-aware re-mapping, and resumes the CPSCF
/// iteration on the shrunken world.

#include <functional>
#include <string>

#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "obs/metrics.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/health.hpp"
#include "scf/scf_solver.hpp"

namespace aeqp::resilience {

/// Retry/rollback policy of a RecoveryDriver.
struct RecoveryOptions {
  /// Retries after the initial attempt; exceeding the budget throws.
  int max_retries = 5;
  /// Graceful degradation: from the second retry on, the mixing factor is
  /// multiplied by this per additional retry (the first retry resumes the
  /// original trajectory unchanged -- a transient fault needs no damping).
  double mixing_damping = 0.5;
  /// Exponential backoff between retries: attempt k sleeps
  /// backoff_base_ms * 2^(k-1). 0 disables sleeping (tests, simulation).
  std::size_t backoff_base_ms = 0;
  /// Deterministic jitter on the backoff: each sleep is scaled by a factor
  /// in [1 - j, 1 + j] hashed from (checkpoint key, attempt), so retries of
  /// concurrent jobs de-synchronize (no retry stampede on a shared
  /// resource) while any single scenario stays bit-reproducible. Must be in
  /// [0, 1); 0 = pure exponential backoff.
  double backoff_jitter = 0.0;
  /// Cooperative deadline/cancellation hook, polled at every CPSCF
  /// iteration (via the driver's observer) and before every retry. When it
  /// returns true the driver stops immediately with a structured
  /// DeadlineExceeded instead of burning more of a budget the caller
  /// already knows is gone. Null = never cancelled.
  std::function<bool()> cancel;
  HealthPolicy health;            ///< per-iteration validation bounds
  std::string checkpoint_key = "cpscf";  ///< prefix; "-dir<j>" is appended
  int checkpoint_every = 1;       ///< save every N healthy iterations
  /// Shrink-and-continue (parallel front-end only): permanently failed
  /// ranks are excluded from the world and the run resumes on survivors
  /// from a buddy-replicated checkpoint. Off by default -- a non-elastic
  /// driver exhausts its retry budget against a dead rank and surfaces a
  /// structured parallel::RankFailure instead of deadlocking.
  bool elastic = false;
  /// Elastic floor: never shrink below this many survivors; reaching it
  /// with another permanent failure exhausts recovery.
  std::size_t min_ranks = 1;
  /// A rank is classified PERMANENT (and shrunk away) after failing on this
  /// many consecutive attempts. 2 = one free retry, matching the transient
  /// rollback rung.
  int permanent_failure_threshold = 2;
  /// Pressure-relief ladder (membudget.hpp): when an OutOfMemoryBudget
  /// fault is caught, each retry first sheds reclaimable state -- drop the
  /// point-eval cache, run registered reclaimers (warm-cache eviction,
  /// buddy spill), shrink the pack window and grid batch -- so the
  /// re-attempt fits the budget; observers also poll the soft watermark
  /// between iterations and relieve pre-emptively. Disable to surface the
  /// first breach unrelieved.
  bool memory_relief = true;
  /// Straggler defense (elastic parallel runs only): attach a
  /// parallel::StragglerDetector, classify at every iteration boundary, and
  /// when a rank degrades, checkpoint + re-enter with measured speed
  /// weights (the rebalance rung) instead of timing the rank out and
  /// shrinking it away. Uses the caller's
  /// ParallelDfptOptions::straggler_detector when set, otherwise the driver
  /// owns one for the solve. Disable for a bit-identical collective
  /// schedule to an undefended run.
  bool straggler_defense = true;
  /// Weight ceiling the rebalance rung applies to a degraded rank:
  /// re-entry uses min(measured speed weight, rebalance_shed_weight). The
  /// arrival-lag ratio the ledger measures is a LOWER bound on the true
  /// slowdown whenever compute and collective waiting interleave, and the
  /// loss is asymmetric -- leaving too much work on a sick rank stalls the
  /// whole world at its pace, while shedding too much merely adds
  /// share/(N-1) to each healthy rank. So the rung sheds to a token share
  /// (the detector's weight floor), the same call speculative-execution
  /// schedulers make once a task is flagged slow. Set to 1.0 to trust the
  /// measured weights unclamped.
  double rebalance_shed_weight = 1.0 / 16.0;
};

/// What recovery cost: mirrored into ParallelDfptStats for parallel runs.
struct RecoveryStats {
  std::size_t faults_detected = 0;   ///< health violations + rank failures
  std::size_t restores = 0;          ///< checkpoint restorations
  std::size_t retries = 0;           ///< solver re-executions
  std::size_t wasted_iterations = 0; ///< iterations lost to rollbacks
  std::size_t shrinks = 0;           ///< world-shrink escalations
  std::size_t lost_ranks = 0;        ///< original ranks excluded by shrinks
  std::size_t buddy_restores = 0;    ///< restores served from a buddy replica
  double remap_seconds = 0.0;        ///< survivor re-mapping wall time
  // Silent-data-corruption rungs (docs/sdc.md). ABFT corrections are healed
  // in place and never reach the rollback path; the other two escalate here.
  std::size_t abft_corrections = 0;     ///< matmul elements fixed in place
  std::size_t invariant_violations = 0; ///< physics guards tripped
  std::size_t payload_corruptions = 0;  ///< CRC/checksum collective failures
  // Memory-budget governor rungs (docs/resilience.md "Memory budget").
  std::size_t oom_events = 0;     ///< OutOfMemoryBudget faults caught
  std::size_t relief_actions = 0; ///< pressure-relief rungs applied
  // Straggler-defense rung (docs/resilience.md "Straggler defense").
  std::size_t rebalances = 0;     ///< weighted re-mappings around slow ranks
  std::size_t degraded_ranks = 0; ///< peak simultaneously degraded ranks
};

/// Wraps DfptSolver / solve_direction_parallel in checkpointed retry.
class RecoveryDriver {
public:
  RecoveryDriver(CheckpointStore& store, RecoveryOptions options);

  /// Serial CPSCF with health validation, checkpointing and retry. Throws
  /// aeqp::Error once the retry budget is exhausted.
  [[nodiscard]] core::DfptDirectionResult solve_direction(
      const scf::ScfResult& ground, core::DfptOptions options, int direction);

  /// Distributed CPSCF with the same policy; rank failures and collective
  /// timeouts surfaced by the simmpi runtime are treated as faults and
  /// recovered from. With options.elastic, permanent rank failures escalate
  /// to shrink + buddy-restore + re-map + resume on the survivors (see the
  /// file comment). Recovery counters are mirrored into result.stats.
  [[nodiscard]] core::ParallelDfptResult solve_direction_parallel(
      const scf::ScfResult& ground, core::ParallelDfptOptions options,
      int direction);

  /// Counters of the most recent solve_direction* call.
  [[nodiscard]] const RecoveryStats& last_stats() const { return stats_; }

private:
  CheckpointStore& store_;
  RecoveryOptions options_;
  RecoveryStats stats_;
};

/// Register `stats` as an obs metrics source ("<prefix>/faults_detected",
/// "<prefix>/restores", ...). `stats` must outlive the registration; pass
/// a RecoveryDriver's last_stats() reference to track a live driver.
[[nodiscard]] obs::ScopedMetricsSource register_metrics(
    const RecoveryStats& stats, std::string prefix = "recovery");

/// Install an observer on `options` that saves an ScfCheckpoint under `key`
/// every `every` iterations (replacing any previous observer).
void attach_scf_checkpointing(scf::ScfOptions& options, CheckpointStore& store,
                              const std::string& key, int every = 1);

/// If a checkpoint exists under `key`, set options.warm_start from it and
/// return true; returns false when there is nothing to resume from.
bool resume_scf_from_checkpoint(scf::ScfOptions& options,
                                const CheckpointStore& store,
                                const std::string& key);

}  // namespace aeqp::resilience
