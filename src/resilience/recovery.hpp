#pragma once

/// \file recovery.hpp
/// Fault recovery for the DFPT solvers. The RecoveryDriver wraps a CPSCF
/// run in a bounded retry loop: every iteration is health-validated and
/// checkpointed through the solver's observer hook; a detected fault
/// (numerical poisoning, rank failure, collective timeout) rolls the run
/// back to the last good checkpoint and retries, degrading gracefully to a
/// damped mixing factor when faults repeat. A transient fault therefore
/// costs only the iterations since the last checkpoint, and the recovered
/// trajectory of the first retry is bit-identical to a fault-free run.

#include <string>

#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "obs/metrics.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/health.hpp"
#include "scf/scf_solver.hpp"

namespace aeqp::resilience {

/// Retry/rollback policy of a RecoveryDriver.
struct RecoveryOptions {
  /// Retries after the initial attempt; exceeding the budget throws.
  int max_retries = 5;
  /// Graceful degradation: from the second retry on, the mixing factor is
  /// multiplied by this per additional retry (the first retry resumes the
  /// original trajectory unchanged -- a transient fault needs no damping).
  double mixing_damping = 0.5;
  /// Exponential backoff between retries: attempt k sleeps
  /// backoff_base_ms * 2^(k-1). 0 disables sleeping (tests, simulation).
  std::size_t backoff_base_ms = 0;
  HealthPolicy health;            ///< per-iteration validation bounds
  std::string checkpoint_key = "cpscf";  ///< prefix; "-dir<j>" is appended
  int checkpoint_every = 1;       ///< save every N healthy iterations
};

/// What recovery cost: mirrored into ParallelDfptStats for parallel runs.
struct RecoveryStats {
  std::size_t faults_detected = 0;   ///< health violations + rank failures
  std::size_t restores = 0;          ///< checkpoint restorations
  std::size_t retries = 0;           ///< solver re-executions
  std::size_t wasted_iterations = 0; ///< iterations lost to rollbacks
};

/// Wraps DfptSolver / solve_direction_parallel in checkpointed retry.
class RecoveryDriver {
public:
  RecoveryDriver(CheckpointStore& store, RecoveryOptions options);

  /// Serial CPSCF with health validation, checkpointing and retry. Throws
  /// aeqp::Error once the retry budget is exhausted.
  [[nodiscard]] core::DfptDirectionResult solve_direction(
      const scf::ScfResult& ground, core::DfptOptions options, int direction);

  /// Distributed CPSCF with the same policy; rank failures and collective
  /// timeouts surfaced by the simmpi runtime are treated as faults and
  /// recovered from. Recovery counters are mirrored into result.stats.
  [[nodiscard]] core::ParallelDfptResult solve_direction_parallel(
      const scf::ScfResult& ground, core::ParallelDfptOptions options,
      int direction);

  /// Counters of the most recent solve_direction* call.
  [[nodiscard]] const RecoveryStats& last_stats() const { return stats_; }

private:
  CheckpointStore& store_;
  RecoveryOptions options_;
  RecoveryStats stats_;
};

/// Register `stats` as an obs metrics source ("<prefix>/faults_detected",
/// "<prefix>/restores", ...). `stats` must outlive the registration; pass
/// a RecoveryDriver's last_stats() reference to track a live driver.
[[nodiscard]] obs::ScopedMetricsSource register_metrics(
    const RecoveryStats& stats, std::string prefix = "recovery");

/// Install an observer on `options` that saves an ScfCheckpoint under `key`
/// every `every` iterations (replacing any previous observer).
void attach_scf_checkpointing(scf::ScfOptions& options, CheckpointStore& store,
                              const std::string& key, int every = 1);

/// If a checkpoint exists under `key`, set options.warm_start from it and
/// return true; returns false when there is nothing to resume from.
bool resume_scf_from_checkpoint(scf::ScfOptions& options,
                                const CheckpointStore& store,
                                const std::string& key);

}  // namespace aeqp::resilience
