#pragma once

/// \file membudget.hpp
/// Per-rank memory-budget governor: turns memory exhaustion into a
/// first-class, injectable, recoverable fault (ROADMAP item 3's "enforced
/// per-rank memory ceiling"). Owners of large allocations probe before
/// committing:
///
///   resilience::oom_probe("dfpt/point_cache", bytes_about_to_allocate);
///
/// With no budget armed the probe is exactly one relaxed atomic load --
/// the same idle contract as sdc_probe and memaudit_enabled, asserted
/// bit-for-bit in test_membudget and nanosecond-measured in
/// bench_membudget. Armed (AEQP_MEM_BUDGET=512M, set_mem_budget(), or an
/// installed OomHook), the probe consults the live memaudit gauges: if
/// admitting the request would cross the hard ceiling it throws the
/// structured OutOfMemoryBudget from common/error.hpp instead of letting
/// the allocation die later as an unrecoverable std::bad_alloc. The
/// RecoveryDriver catches it like any other fault class and walks the
/// pressure-relief ladder (docs/resilience.md "Memory budget"): drop the
/// point-eval cache, run registered reclaimers (warm-cache eviction, buddy
/// spill to disk), shrink the pack window and grid batch through the tune
/// knobs -- and the service escalates to ReducedAccuracy rather than
/// aborting.
///
/// Arming the budget also arms the memory audit (the gauges are the
/// governor's only data source); memaudit-on is proven bit-identical in
/// test_obs, so enforcement never perturbs numerics -- it only decides
/// whether an allocation may proceed.
///
/// The soft watermark (default 80% of the budget, AEQP_MEM_SOFT_PCT) never
/// throws: RecoveryDriver observers poll mem_pressure() between CPSCF
/// iterations and call relieve_pressure() to shed reclaimable state before
/// the hard ceiling is ever reached.
///
/// OomPlan/OomInjector mirror SdcPlan/SdcInjector: deterministic
/// allocation-failure injection addressed by (site, invocation, rank) so
/// tests and the chaos bench can force the bad_alloc paths without
/// actually exhausting memory.
///
/// Header-only probe machinery by design: oom_probe sites live in core and
/// comm, which do not link the resilience archive -- exactly like
/// sdc_inject.hpp's probe. The injector, reclaimer registry, and admission
/// estimator live in membudget.cpp (linked by resilience and service).

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "obs/memaudit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aeqp::resilience {

/// Pluggable allocation-failure decision hook (OomInjector is the shipped
/// implementation). Called on the armed slow path only; must be
/// thread-safe (probes fire concurrently from rank threads).
class OomHook {
public:
  virtual ~OomHook() = default;
  /// Return true to fail this allocation: the probe throws
  /// OutOfMemoryBudget at `site` as if the hard ceiling were breached.
  virtual bool should_fail(const char* site, std::size_t request_bytes) = 0;
};

namespace membudget_detail {

/// -1 = not yet initialized from AEQP_MEM_BUDGET, 0 = idle (probes cost
/// one relaxed load and return), 1 = armed (budget set and/or hook
/// installed). A single tri-state atomic so the idle fast path is exactly
/// one load -- budget bytes, soft percent, and the hook pointer live in
/// separate atomics consulted only when armed.
inline std::atomic<int> g_state{-1};
/// Hard ceiling in bytes; <= 0 = no ceiling (injector may still be armed).
inline std::atomic<std::int64_t> g_budget_bytes{0};
/// Soft watermark as a percent of the budget (1..100).
inline std::atomic<int> g_soft_percent{80};
inline std::atomic<OomHook*> g_hook{nullptr};

/// Parse "536870912", "512M", "8G", "64K" (suffix case-insensitive,
/// optional trailing 'B' / "iB"). Returns -1 on malformed input so a typo
/// in AEQP_MEM_BUDGET disarms instead of silently enforcing 0.
[[nodiscard]] inline std::int64_t parse_mem_bytes(const char* text) {
  if (text == nullptr || *text == '\0') return -1;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || value < 0.0) return -1;
  std::int64_t scale = 1;
  if (*end != '\0') {
    switch (std::toupper(static_cast<unsigned char>(*end))) {
      case 'K': scale = std::int64_t{1} << 10; ++end; break;
      case 'M': scale = std::int64_t{1} << 20; ++end; break;
      case 'G': scale = std::int64_t{1} << 30; ++end; break;
      case 'T': scale = std::int64_t{1} << 40; ++end; break;
      default: return -1;
    }
    if (std::toupper(static_cast<unsigned char>(*end)) == 'I') ++end;
    if (std::toupper(static_cast<unsigned char>(*end)) == 'B') ++end;
    if (*end != '\0') return -1;
  }
  return static_cast<std::int64_t>(value * static_cast<double>(scale));
}

/// First-use initialization from AEQP_MEM_BUDGET (and AEQP_MEM_SOFT_PCT).
/// compare_exchange so exactly one initializer wins under concurrent first
/// probes. Returns the armed verdict.
inline bool init_from_env() {
  std::int64_t budget = 0;
  if (const char* env = std::getenv("AEQP_MEM_BUDGET")) {
    const std::int64_t parsed = parse_mem_bytes(env);
    if (parsed > 0) budget = parsed;
  }
  if (const char* env = std::getenv("AEQP_MEM_SOFT_PCT")) {
    const long pct = std::strtol(env, nullptr, 10);
    if (pct >= 1 && pct <= 100)
      g_soft_percent.store(static_cast<int>(pct), std::memory_order_relaxed);
  }
  int expected = -1;
  if (g_state.compare_exchange_strong(expected, budget > 0 ? 1 : 0,
                                      std::memory_order_relaxed)) {
    if (budget > 0) {
      g_budget_bytes.store(budget, std::memory_order_relaxed);
      obs::set_memaudit(true);  // gauges are the governor's data source
    }
    return budget > 0;
  }
  return expected != 0;  // someone else initialized first
}

}  // namespace membudget_detail

/// Total live bytes across every registered memaudit gauge: the governor's
/// definition of "in use". Zero when the audit is off (no gauges armed).
[[nodiscard]] inline std::int64_t mem_in_use() {
  std::int64_t total = 0;
  for (const auto& g : obs::mem_snapshot()) total += g.current_bytes;
  return total;
}

/// The hard ceiling in bytes (0 = none armed). Forces env init.
[[nodiscard]] inline std::int64_t mem_budget_bytes() {
  if (membudget_detail::g_state.load(std::memory_order_relaxed) < 0)
    membudget_detail::init_from_env();
  return std::max<std::int64_t>(
      membudget_detail::g_budget_bytes.load(std::memory_order_relaxed), 0);
}

/// Whether a byte ceiling is in force (an injector-only arming returns
/// false: it fails chosen sites but admits everything else).
[[nodiscard]] inline bool mem_budget_enabled() { return mem_budget_bytes() > 0; }

/// Programmatic budget override (tests, benches, service config); 0 clears
/// the ceiling. Arms the memory audit when enabling, mirrors what first-use
/// env init does. Takes effect immediately.
inline void set_mem_budget(std::int64_t bytes) {
  namespace d = membudget_detail;
  if (d::g_state.load(std::memory_order_relaxed) < 0) d::init_from_env();
  d::g_budget_bytes.store(bytes > 0 ? bytes : 0, std::memory_order_relaxed);
  if (bytes > 0) obs::set_memaudit(true);
  const bool armed =
      bytes > 0 || d::g_hook.load(std::memory_order_acquire) != nullptr;
  d::g_state.store(armed ? 1 : 0, std::memory_order_relaxed);
}

/// Soft watermark as a percent of the hard ceiling (clamped to 1..100).
inline void set_mem_soft_percent(int percent) {
  membudget_detail::g_soft_percent.store(std::clamp(percent, 1, 100),
                                         std::memory_order_relaxed);
}
[[nodiscard]] inline int mem_soft_percent() {
  return membudget_detail::g_soft_percent.load(std::memory_order_relaxed);
}

/// Live pressure snapshot for observers: budget/soft thresholds and the
/// gauge total, with `over_soft` precomputed. All zeros / false when no
/// byte ceiling is armed.
struct MemPressure {
  std::int64_t budget_bytes = 0;
  std::int64_t soft_bytes = 0;
  std::int64_t in_use_bytes = 0;
  bool over_soft = false;
};

[[nodiscard]] inline MemPressure mem_pressure() {
  MemPressure p;
  p.budget_bytes = mem_budget_bytes();
  if (p.budget_bytes <= 0) return p;
  p.soft_bytes = p.budget_bytes * mem_soft_percent() / 100;
  p.in_use_bytes = mem_in_use();
  p.over_soft = p.in_use_bytes > p.soft_bytes;
  return p;
}

/// Install (or with nullptr remove) the allocation-failure hook. Installing
/// arms the probes even without a byte budget. The hook must outlive its
/// installation; prefer ScopedOomInjector.
inline void install_oom_hook(OomHook* hook) {
  namespace d = membudget_detail;
  if (d::g_state.load(std::memory_order_relaxed) < 0) d::init_from_env();
  d::g_hook.store(hook, std::memory_order_release);
  const bool armed =
      hook != nullptr || d::g_budget_bytes.load(std::memory_order_relaxed) > 0;
  d::g_state.store(armed ? 1 : 0, std::memory_order_relaxed);
}

namespace membudget_detail {

/// Armed slow path, out of line from the probe so the idle path inlines to
/// a load+branch. Consults the hook first (injected failures fire even
/// under no byte ceiling), then the gauge total against the hard ceiling.
inline void probe_armed(const char* site, std::size_t request_bytes) {
  if (OomHook* hook = g_hook.load(std::memory_order_acquire)) {
    if (hook->should_fail(site, request_bytes)) {
      obs::trace_instant("membudget/oom_injected");
      obs::counter("membudget/oom_throws").add(1);
      throw OutOfMemoryBudget(
          site, request_bytes,
          static_cast<std::size_t>(
              std::max<std::int64_t>(g_budget_bytes.load(std::memory_order_relaxed), 0)),
          static_cast<std::size_t>(std::max<std::int64_t>(mem_in_use(), 0)));
    }
  }
  const std::int64_t budget = g_budget_bytes.load(std::memory_order_relaxed);
  if (budget <= 0) return;
  const std::int64_t in_use = mem_in_use();
  if (in_use + static_cast<std::int64_t>(request_bytes) > budget) {
    obs::trace_instant("membudget/oom_hard");
    obs::counter("membudget/oom_throws").add(1);
    throw OutOfMemoryBudget(site, request_bytes,
                            static_cast<std::size_t>(budget),
                            static_cast<std::size_t>(std::max<std::int64_t>(in_use, 0)));
  }
}

}  // namespace membudget_detail

/// The governor probe: call before committing a large allocation with the
/// byte count about to be requested (request_bytes == 0 re-checks already
/// committed usage against the ceiling). Idle cost: one relaxed atomic
/// load. Armed: may throw OutOfMemoryBudget -- never returns a verdict, so
/// a passing probe perturbs nothing and the bit-identity contract holds.
inline void oom_probe(const char* site, std::size_t request_bytes) {
  const int s = membudget_detail::g_state.load(std::memory_order_relaxed);
  if (s == 0) return;
  if (s < 0 && !membudget_detail::init_from_env()) return;
  membudget_detail::probe_armed(site, request_bytes);
}

// ---------------------------------------------------------------------------
// Deterministic allocation-failure injection (mirrors SdcPlan/SdcInjector)

/// One planned allocation failure, addressed by (site, invocation, rank).
struct OomEvent {
  std::string site = "dfpt/point_cache";  ///< probe site to fail
  std::size_t invocation = 0;  ///< fail the (n+1)-th probe at that site
  int rank = -1;               ///< rank filter via thread_rank(); -1 = any
  bool transient = true;       ///< false = fail every matching probe
};

/// A validated list of planned failures (empty plan = benign hook).
class OomPlan {
public:
  void add(const OomEvent& event);
  [[nodiscard]] const std::vector<OomEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

private:
  std::vector<OomEvent> events_;
};

struct OomInjectorStats {
  std::size_t probes = 0;             ///< armed probes consulted
  std::size_t failures_injected = 0;  ///< probes forced to throw
};

/// Deterministic OomHook: counts probe invocations per site and fails the
/// planned ones. Thread-safe; install via ScopedOomInjector.
class OomInjector final : public OomHook {
public:
  explicit OomInjector(OomPlan plan);

  bool should_fail(const char* site, std::size_t request_bytes) override;

  [[nodiscard]] OomInjectorStats stats() const;
  /// Planned failures that have not fired yet.
  [[nodiscard]] std::size_t pending() const;
  /// How many probes have been seen at `site` so far.
  [[nodiscard]] std::size_t invocations(const std::string& site) const;

private:
  struct Armed {
    OomEvent event;
    std::size_t fired = 0;
    bool done = false;
  };
  mutable std::mutex mutex_;
  std::vector<Armed> events_;
  std::unordered_map<std::string, std::size_t> invocations_;
  OomInjectorStats stats_;
};

/// RAII installation: arms the probes on construction, restores the idle
/// state on destruction even if the test body throws.
class ScopedOomInjector {
public:
  explicit ScopedOomInjector(OomInjector& injector) {
    install_oom_hook(&injector);
  }
  ~ScopedOomInjector() { install_oom_hook(nullptr); }
  ScopedOomInjector(const ScopedOomInjector&) = delete;
  ScopedOomInjector& operator=(const ScopedOomInjector&) = delete;
};

/// Fold injector stats into the metrics registry under `prefix`; keep the
/// returned registration alive as long as the injector.
[[nodiscard]] obs::ScopedMetricsSource register_metrics(
    const OomInjector& injector, std::string prefix = "membudget/inject");

// ---------------------------------------------------------------------------
// Pressure-relief reclaimer registry

/// A registered shedder of reclaimable state; returns bytes freed. Must be
/// callable from any thread (observers run on rank 0 while peers compute).
using MemReclaimFn = std::function<std::int64_t()>;

/// RAII registration of a reclaimer in the process-wide relief registry
/// (the SolveServer registers its WarmCache, run_elastic its buddy spill).
/// relieve_pressure() runs reclaimers in registration order.
class ScopedMemReclaimer {
public:
  ScopedMemReclaimer(std::string name, MemReclaimFn fn);
  ~ScopedMemReclaimer();
  ScopedMemReclaimer(const ScopedMemReclaimer&) = delete;
  ScopedMemReclaimer& operator=(const ScopedMemReclaimer&) = delete;

private:
  std::uint64_t id_;
};

/// Run registered reclaimers in order until the gauge total drops under
/// the soft watermark (all of them when no byte ceiling is armed). Every
/// action emits a trace instant and bumps "membudget/relief_bytes".
/// Returns total bytes freed.
std::int64_t relieve_pressure();

/// Number of live reclaimers (tests).
[[nodiscard]] std::size_t registered_reclaimer_count();

// ---------------------------------------------------------------------------
// Admission-time memory estimation (service layer)

/// One term of the per-rank peak-memory model: coeff_bytes * n_atoms ^
/// exponent, divided by the rank count when the structure is sharded
/// (per_rank). Replicated structures (p1) deliberately do NOT divide --
/// which is exactly why the service's ReducedRanks rung must re-check the
/// estimate: halving ranks doubles every per_rank term.
struct MemModelTerm {
  std::string gauge;          ///< memaudit gauge this term models
  double coeff_bytes = 0.0;   ///< bytes at n_atoms == 1
  double exponent = 1.0;      ///< fitted scaling exponent (BENCH_memory.json)
  bool per_rank = false;      ///< true: sharded, divide by ranks
};

/// The fitted per-rank peak model used at admission. Seeded from the
/// measured scaling exponents the fig09a bench publishes; override per
/// deployment via ServerOptions::mem_model.
struct MemModel {
  std::vector<MemModelTerm> terms;
  [[nodiscard]] static MemModel default_model();
};

/// Predicted per-rank peak bytes for a job of `n_atoms` on `ranks` ranks.
[[nodiscard]] std::int64_t estimate_job_memory(std::size_t n_atoms,
                                               std::size_t ranks,
                                               const MemModel& model);

}  // namespace aeqp::resilience
