#pragma once

/// \file health.hpp
/// Numerical health validation for iterative solver state. A fault that
/// corrupts a collective payload (bit flip, NaN, Inf) does not announce
/// itself; it surfaces as a non-finite or absurdly large response density
/// matrix, or as a residual that jumps by orders of magnitude between
/// iterations. These checks turn that silent poisoning into a detected
/// fault the recovery driver can roll back.

#include <string>

#include "linalg/matrix.hpp"

namespace aeqp::resilience {

/// Bounds a healthy CPSCF/SCF iteration must satisfy.
struct HealthPolicy {
  bool check_finite = true;      ///< reject NaN/Inf anywhere in the state
  double max_abs_value = 1e8;    ///< ceiling on |state| entries
  /// The residual may grow at most this factor between consecutive
  /// iterations (mixing keeps legitimate CPSCF residuals near-monotone;
  /// a corrupted payload blows the residual up by many orders).
  double max_delta_growth = 1e3;
};

/// Outcome of a health check; `reason` names the violated bound.
struct HealthReport {
  bool healthy = true;
  std::string reason;
};

/// Check a state matrix for finiteness and magnitude.
[[nodiscard]] HealthReport check_matrix_health(const linalg::Matrix& m,
                                               const HealthPolicy& policy);

/// Check one iteration: the state matrix plus the residual trajectory.
/// `prev_delta` <= 0 disables the growth check (first observed iteration).
[[nodiscard]] HealthReport check_iteration_health(const linalg::Matrix& state,
                                                  double delta,
                                                  double prev_delta,
                                                  const HealthPolicy& policy);

}  // namespace aeqp::resilience
