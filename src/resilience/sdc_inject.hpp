#pragma once

/// \file sdc_inject.hpp
/// Deterministic compute-site fault injection: silent data corruption
/// planted *inside* kernel outputs -- matmul results, density batch
/// accumulations, rho_multipole spline tables -- rather than at the
/// collective layer (that half lives in parallel/fault). An SdcPlan is a
/// set of SdcEvents addressed by (site name, invocation index at that
/// site); the SdcInjector installed as the process-wide CorruptionHook
/// replays the plan when instrumented kernels probe their freshly written
/// outputs. The API deliberately mirrors parallel::FaultPlan (add/random,
/// transient vs permanent, stats/pending) so fault scenarios compose across
/// both layers from one seeded description.
///
/// The probe is engineered like AEQP_TRACE's off-mode: with no hook
/// installed, AEQP_SDC_PROBE costs one relaxed atomic load -- production
/// runs pay nothing for the instrumentation. The hook indirection is
/// header-only (inline atomic + virtual dispatch) so probes compiled into
/// linalg/poisson/core never need link-time symbols from the resilience
/// archive, which sits *above* them in the module graph.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace aeqp::resilience {

/// Mutates (or not) a kernel output that just probed itself. Implementations
/// must be thread-safe: parallel kernels probe concurrently.
class CorruptionHook {
public:
  virtual ~CorruptionHook() = default;
  /// `site` is a static string naming the compute site (e.g.
  /// "linalg/matmul", "cpscf/rho_batch"); `data` is the site's freshly
  /// written output, mutable in place.
  virtual void corrupt(const char* site, std::span<double> data) = 0;
};

namespace detail {
inline std::atomic<CorruptionHook*> g_corruption_hook{nullptr};
}  // namespace detail

/// Install (or with nullptr, remove) the process-wide corruption hook.
/// The hook must outlive all probes that may observe it.
inline void install_corruption_hook(CorruptionHook* hook) {
  detail::g_corruption_hook.store(hook, std::memory_order_release);
}

[[nodiscard]] inline CorruptionHook* corruption_hook() {
  return detail::g_corruption_hook.load(std::memory_order_acquire);
}

/// Probe a compute site: give the installed hook (if any) a chance to
/// corrupt `data` in place. One relaxed-ish atomic load when no hook is
/// installed -- matching the AEQP_TRACE zero-cost contract.
inline void sdc_probe(const char* site, std::span<double> data) {
  CorruptionHook* hook =
      detail::g_corruption_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook->corrupt(site, data);
}

/// Kinds of corruption the compute-site injector can plant.
enum class SdcKind {
  BitFlip,     ///< flip one bit of one output element
  NanPayload,  ///< overwrite one output element with quiet NaN
  InfPayload,  ///< overwrite one output element with +infinity
};

[[nodiscard]] const char* sdc_kind_name(SdcKind kind);

/// One planned compute-site corruption. Fires at the `invocation`-th probe
/// of `site` (per-site counter, starting at 0), optionally filtered to one
/// simmpi rank via `rank` (original world ids; -1 = any thread).
struct SdcEvent {
  SdcKind kind = SdcKind::BitFlip;
  std::string site = "linalg/matmul";  ///< probe site the event targets
  std::size_t invocation = 0;  ///< which probe of the site (per-site index)
  std::size_t element = 0;     ///< output element (taken modulo size)
  int bit = 62;                ///< bit flipped by BitFlip (0..63)
  int rank = -1;               ///< thread's simmpi rank filter (-1 = any)
  /// true: fire at most once (transient upset, clean replay on retry).
  /// false: re-fire at every later matching probe -- a persistently bad
  /// compute unit that only avoiding the site silences.
  bool transient = true;
};

/// An ordered set of compute-site corruption events.
class SdcPlan {
public:
  SdcPlan() = default;

  /// Validates the event (site non-empty, bit in 0..63) and appends it;
  /// throws aeqp::Error on out-of-range fields.
  SdcPlan& add(const SdcEvent& event);

  /// Draw `n_events` events from a seeded RNG: site uniform from `sites`
  /// (must be non-empty), invocation uniform in [0, max_invocation), kind
  /// uniform from the three corruption kinds, element uniform in [0, 64),
  /// bit uniform in [48, 64) so the corruption dwarfs any checksum
  /// tolerance. Reproducible bit-for-bit for a given seed.
  static SdcPlan random(std::uint64_t seed, std::size_t n_events,
                        const std::vector<std::string>& sites,
                        std::size_t max_invocation);

  [[nodiscard]] const std::vector<SdcEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

private:
  std::vector<SdcEvent> events_;
};

/// Counters of what the compute-site injector actually did.
struct SdcInjectorStats {
  std::size_t corruptions = 0;   ///< events fired (all kinds)
  std::size_t bit_flips = 0;
  std::size_t nans_planted = 0;
  std::size_t infs_planted = 0;
  std::size_t probes = 0;        ///< total probes observed
};

/// Replays an SdcPlan against instrumented kernels. Thread-safe; install
/// with install_corruption_hook (or the ScopedSdcInjector RAII wrapper) and
/// keep alive until the hook is removed.
class SdcInjector final : public CorruptionHook {
public:
  explicit SdcInjector(SdcPlan plan);

  void corrupt(const char* site, std::span<double> data) override;

  [[nodiscard]] SdcInjectorStats stats() const;

  /// Events that have never fired (a permanent event that fired at least
  /// once no longer counts as pending, even though it stays armed).
  [[nodiscard]] std::size_t pending() const;

  /// Probe invocations seen so far at `site` (for addressing follow-up
  /// plans deterministically).
  [[nodiscard]] std::size_t invocations(const std::string& site) const;

private:
  struct Armed {
    SdcEvent event;
    std::size_t fired = 0;
    bool done = false;
  };
  mutable std::mutex mutex_;
  std::vector<Armed> events_;
  std::unordered_map<std::string, std::size_t> invocations_;
  SdcInjectorStats stats_;
};

/// RAII installation of an injector as the process-wide corruption hook.
class ScopedSdcInjector {
public:
  explicit ScopedSdcInjector(SdcInjector& injector) {
    install_corruption_hook(&injector);
  }
  ~ScopedSdcInjector() { install_corruption_hook(nullptr); }
  ScopedSdcInjector(const ScopedSdcInjector&) = delete;
  ScopedSdcInjector& operator=(const ScopedSdcInjector&) = delete;
};

/// Register `injector`'s counters as an obs metrics source
/// ("<prefix>/corruptions", "<prefix>/bit_flips", ...). The injector must
/// outlive the returned registration.
[[nodiscard]] obs::ScopedMetricsSource register_metrics(
    const SdcInjector& injector, std::string prefix = "sdc");

}  // namespace aeqp::resilience
