#include "resilience/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/trace.hpp"
#include "parallel/cluster.hpp"
#include "scf/diis.hpp"

namespace aeqp::resilience {

namespace {

/// Per-attempt bookkeeping threaded through the CPSCF observer.
struct AttemptContext {
  double prev_delta = -1.0;      ///< residual of the previous iteration
  int last_iteration = 0;        ///< last iteration the observer saw
  int checkpoint_iteration = 0;  ///< iteration of the last saved checkpoint
  bool fault = false;
  std::string fault_reason;
};

/// The shared retry loop of both CPSCF front-ends. `run` executes one solver
/// attempt with the given (possibly warm-started, possibly damped) options;
/// `aborted_of` extracts the solver's aborted flag from its result type.
template <typename Run, typename AbortedOf>
auto run_recovered(CheckpointStore& store, const RecoveryOptions& ropt,
                   RecoveryStats& stats, const core::DfptOptions& base,
                   int direction, const char* what, Run&& run,
                   AbortedOf&& aborted_of) {
  stats = RecoveryStats{};
  const std::string key =
      ropt.checkpoint_key + "-dir" + std::to_string(direction);
  store.remove(key);  // a stale checkpoint from a previous run must not leak in

  std::string last_reason;
  for (int attempt = 0;; ++attempt) {
    AttemptContext ctx;
    core::DfptOptions opts = base;
    // Graceful degradation: the first retry replays the original trajectory
    // (a transient fault needs no damping, and the replay is bit-identical);
    // repeated faults progressively damp the mixing.
    if (attempt >= 2)
      opts.mixing = base.mixing * std::pow(ropt.mixing_damping, attempt - 1);

    if (attempt > 0) {
      ++stats.retries;
      obs::trace_instant("recovery/retry");
      if (auto ckpt = store.try_load_cpscf(key);
          ckpt && ckpt->iteration >= 1 &&
          ckpt->iteration < opts.max_iterations) {
        ctx.checkpoint_iteration = ckpt->iteration;
        ctx.prev_delta = ckpt->last_delta;
        auto ws = std::make_shared<core::CpscfWarmStart>();
        ws->iteration = ckpt->iteration;
        ws->p1 = std::move(ckpt->p1);
        opts.warm_start = std::move(ws);
        ++stats.restores;
        obs::trace_instant("recovery/rollback");
      }
      if (ropt.backoff_base_ms > 0) {
        const int shift = std::min(attempt - 1, 20);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(ropt.backoff_base_ms << shift));
      }
    }

    opts.observer = [&](const core::CpscfIterationState& s) {
      ctx.last_iteration = s.iteration;
      const HealthReport hr =
          check_iteration_health(*s.p1, s.delta, ctx.prev_delta, ropt.health);
      if (!hr.healthy) {
        ctx.fault = true;
        ctx.fault_reason =
            "iteration " + std::to_string(s.iteration) + " unhealthy: " + hr.reason;
        return core::CpscfAction::Abort;
      }
      ctx.prev_delta = s.delta;
      if (s.iteration % ropt.checkpoint_every == 0) {
        CpscfCheckpoint ckpt;
        ckpt.direction = s.direction;
        ckpt.iteration = s.iteration;
        ckpt.mixing = s.mixing;
        ckpt.last_delta = s.delta;
        ckpt.p1 = *s.p1;
        store.save(key, ckpt);
        ctx.checkpoint_iteration = s.iteration;
      }
      return core::CpscfAction::Continue;
    };

    try {
      auto result = run(opts);
      if (!ctx.fault && !aborted_of(result)) return result;  // healthy
      // An abort this driver never requested means the abort decision
      // itself was corrupted in transit -- treat it as a fault, not as a
      // legitimate early exit.
      last_reason = ctx.fault
                        ? ctx.fault_reason
                        : "solver aborted without a recovery request "
                          "(corrupted control payload?)";
    } catch (const parallel::RankFailure& e) {
      last_reason = e.what();
    } catch (const parallel::CollectiveTimeout& e) {
      last_reason = e.what();
    }
    ++stats.faults_detected;
    obs::trace_instant("recovery/fault_detected");
    stats.wasted_iterations += static_cast<std::size_t>(
        std::max(0, ctx.last_iteration - ctx.checkpoint_iteration));
    AEQP_LOG_INFO << what << ": fault on attempt " << attempt + 1 << " ("
                  << last_reason << "); rolling back to iteration "
                  << ctx.checkpoint_iteration;

    if (attempt >= ropt.max_retries) {
      std::ostringstream msg;
      msg << what << ": retry budget exhausted for direction " << direction
          << " after " << attempt + 1 << " attempts: " << stats.faults_detected
          << " faults detected, " << stats.restores
          << " checkpoint restores, last failure: " << last_reason;
      AEQP_THROW(msg.str());
    }
  }
}

}  // namespace

RecoveryDriver::RecoveryDriver(CheckpointStore& store, RecoveryOptions options)
    : store_(store), options_(std::move(options)) {
  AEQP_CHECK(options_.max_retries >= 0, "RecoveryDriver: negative retry budget");
  AEQP_CHECK(options_.checkpoint_every >= 1,
             "RecoveryDriver: checkpoint_every must be >= 1");
  AEQP_CHECK(options_.mixing_damping > 0.0 && options_.mixing_damping <= 1.0,
             "RecoveryDriver: mixing_damping must be in (0, 1]");
}

core::DfptDirectionResult RecoveryDriver::solve_direction(
    const scf::ScfResult& ground, core::DfptOptions options, int direction) {
  return run_recovered(
      store_, options_, stats_, options, direction, "RecoveryDriver[serial]",
      [&](const core::DfptOptions& opts) {
        return core::DfptSolver(ground, opts).solve_direction(direction);
      },
      [](const core::DfptDirectionResult& r) { return r.aborted; });
}

core::ParallelDfptResult RecoveryDriver::solve_direction_parallel(
    const scf::ScfResult& ground, core::ParallelDfptOptions options,
    int direction) {
  auto result = run_recovered(
      store_, options_, stats_, options.dfpt, direction,
      "RecoveryDriver[parallel]",
      [&](const core::DfptOptions& opts) {
        core::ParallelDfptOptions popts = options;
        popts.dfpt = opts;
        return core::solve_direction_parallel(ground, popts, direction);
      },
      [](const core::ParallelDfptResult& r) { return r.direction.aborted; });
  result.stats.faults_detected = stats_.faults_detected;
  result.stats.restores = stats_.restores;
  result.stats.retries = stats_.retries;
  result.stats.wasted_iterations = stats_.wasted_iterations;
  return result;
}

obs::ScopedMetricsSource register_metrics(const RecoveryStats& stats,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&stats, prefix = std::move(prefix)](std::vector<obs::MetricSample>& out) {
        const auto push = [&](const char* name, double v) {
          out.push_back({prefix + "/" + name, v});
        };
        push("faults_detected", static_cast<double>(stats.faults_detected));
        push("restores", static_cast<double>(stats.restores));
        push("retries", static_cast<double>(stats.retries));
        push("wasted_iterations", static_cast<double>(stats.wasted_iterations));
      });
}

void attach_scf_checkpointing(scf::ScfOptions& options, CheckpointStore& store,
                              const std::string& key, int every) {
  AEQP_CHECK(every >= 1, "attach_scf_checkpointing: every must be >= 1");
  options.observer = [&store, key, every](const scf::ScfIterationState& s) {
    if (s.iteration % every == 0) {
      ScfCheckpoint ckpt;
      ckpt.iteration = s.iteration;
      ckpt.last_delta = s.delta;
      ckpt.density_matrix = *s.density_matrix;
      ckpt.diis_history = s.mixer->export_history();
      store.save(key, ckpt);
    }
    return scf::ScfAction::Continue;
  };
}

bool resume_scf_from_checkpoint(scf::ScfOptions& options,
                                const CheckpointStore& store,
                                const std::string& key) {
  auto ckpt = store.try_load_scf(key);
  if (!ckpt) return false;
  if (ckpt->iteration < 1 || ckpt->iteration >= options.max_iterations)
    return false;
  auto ws = std::make_shared<scf::ScfWarmStart>();
  ws->iteration = ckpt->iteration;
  ws->density_matrix = std::move(ckpt->density_matrix);
  ws->diis_history = std::move(ckpt->diis_history);
  options.warm_start = std::move(ws);
  return true;
}

}  // namespace aeqp::resilience
