#include "resilience/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "linalg/abft.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "parallel/cluster.hpp"
#include "parallel/straggler.hpp"
#include "resilience/buddy.hpp"
#include "resilience/membudget.hpp"
#include "scf/diis.hpp"
#include "tune/tune.hpp"

namespace aeqp::resilience {

namespace {

/// Per-attempt bookkeeping threaded through the CPSCF observer.
struct AttemptContext {
  double prev_delta = -1.0;      ///< residual of the previous iteration
  int last_iteration = 0;        ///< last iteration the observer saw
  int checkpoint_iteration = 0;  ///< iteration of the last saved checkpoint
  bool fault = false;
  bool cancelled = false;        ///< the cancel hook tripped mid-solve
  bool straggler = false;        ///< abort requested by the straggler rung
  std::string fault_reason;
};

/// Ascending-id subset test for degraded-rank sets (both sorted).
bool degraded_subset_of(const std::vector<std::size_t>& degraded,
                        const std::vector<std::size_t>& known) {
  return std::includes(known.begin(), known.end(), degraded.begin(),
                       degraded.end());
}

/// splitmix64 -- the deterministic hash behind backoff jitter.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Exponential backoff with deterministic jitter: attempt k sleeps
/// base * 2^(k-1), scaled by a factor in [1 - j, 1 + j] hashed from
/// (key, attempt). Reproducible per scenario, de-synchronized across jobs.
void backoff_sleep(const RecoveryOptions& ropt, const std::string& key,
                   int attempt) {
  if (ropt.backoff_base_ms == 0) return;
  const int shift = std::min(attempt - 1, 20);
  double ms = static_cast<double>(ropt.backoff_base_ms << shift);
  if (ropt.backoff_jitter > 0.0) {
    const std::uint64_t h =
        mix64(std::hash<std::string>{}(key) +
              static_cast<std::uint64_t>(attempt) * 0x9E3779B97F4A7C15ull);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    ms *= 1.0 + ropt.backoff_jitter * (2.0 * u - 1.0);
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<std::size_t>(ms)));
}

/// Structured cancellation error naming where the budget ran out.
[[noreturn]] void throw_cancelled(const char* what, int direction, int attempt,
                                  int iteration) {
  throw DeadlineExceeded(std::string(what) + ": cancelled for direction " +
                         std::to_string(direction) + " on attempt " +
                         std::to_string(attempt + 1) + " at iteration " +
                         std::to_string(iteration));
}

/// Poll the cooperative cancellation hook before committing to (more) work.
void throw_if_cancelled(const RecoveryOptions& ropt, const char* what,
                        int direction, int attempt, int iteration) {
  if (ropt.cancel && ropt.cancel())
    throw_cancelled(what, direction, attempt, iteration);
}

/// The shared retry loop of both CPSCF front-ends. `run` executes one solver
/// attempt with the given (possibly warm-started, possibly damped) options;
/// `aborted_of` extracts the solver's aborted flag from its result type;
/// `apply_relief` walks one more rung of the pressure-relief ladder before
/// a retry forced by an OutOfMemoryBudget fault (it returns how many relief
/// actions it applied).
template <typename Run, typename AbortedOf, typename ApplyRelief>
auto run_recovered(CheckpointStore& store, const RecoveryOptions& ropt,
                   RecoveryStats& stats, const core::DfptOptions& base,
                   int direction, const char* what, Run&& run,
                   AbortedOf&& aborted_of, ApplyRelief&& apply_relief) {
  stats = RecoveryStats{};
  const std::string key =
      ropt.checkpoint_key + "-dir" + std::to_string(direction);
  store.remove(key);  // a stale checkpoint from a previous run must not leak in

  std::string last_reason;
  bool last_rank_failure = false;
  std::size_t last_failed_rank = 0;
  std::size_t last_observer_rank = 0;
  // ABFT corrections are healed inside the kernels and never surface as
  // exceptions; account for them with a scoped accumulator (rank threads
  // inherit it), so concurrent drivers in a multi-tenant server never read
  // each other's corrections.
  const linalg::AbftStatsScope abft_scope;
  int oom_rung = 0;  // relief-ladder position, advanced per OOM fault
  for (int attempt = 0;; ++attempt) {
    AttemptContext ctx;
    bool oom_fault = false;
    core::DfptOptions opts = base;
    // Graceful degradation: the first retry replays the original trajectory
    // (a transient fault needs no damping, and the replay is bit-identical);
    // repeated faults progressively damp the mixing.
    if (attempt >= 2)
      opts.mixing = base.mixing * std::pow(ropt.mixing_damping, attempt - 1);

    if (attempt > 0) {
      ++stats.retries;
      obs::trace_instant("recovery/retry");
      if (auto ckpt = store.try_load_cpscf(key);
          ckpt && ckpt->iteration >= 1 &&
          ckpt->iteration < opts.max_iterations) {
        ctx.checkpoint_iteration = ckpt->iteration;
        ctx.prev_delta = ckpt->last_delta;
        auto ws = std::make_shared<core::CpscfWarmStart>();
        ws->iteration = ckpt->iteration;
        ws->p1 = std::move(ckpt->p1);
        opts.warm_start = std::move(ws);
        ++stats.restores;
        obs::trace_instant("recovery/rollback");
      }
      backoff_sleep(ropt, key, attempt);
      throw_if_cancelled(ropt, what, direction, attempt, ctx.checkpoint_iteration);
    }

    opts.observer = [&](const core::CpscfIterationState& s) {
      ctx.last_iteration = s.iteration;
      if (ropt.cancel && ropt.cancel()) {
        ctx.cancelled = true;
        return core::CpscfAction::Abort;
      }
      const HealthReport hr =
          check_iteration_health(*s.p1, s.delta, ctx.prev_delta, ropt.health);
      if (!hr.healthy) {
        ctx.fault = true;
        ctx.fault_reason =
            "iteration " + std::to_string(s.iteration) + " unhealthy: " + hr.reason;
        return core::CpscfAction::Abort;
      }
      ctx.prev_delta = s.delta;
      // Soft-watermark polling: shed reclaimable state between iterations
      // BEFORE the hard ceiling is reached. Non-aborting, observer-only --
      // reclaimers free caches and replicas, never solver state.
      if (ropt.memory_relief && mem_pressure().over_soft) {
        obs::trace_instant("membudget/soft_watermark");
        if (relieve_pressure() > 0) ++stats.relief_actions;
      }
      if (s.iteration % ropt.checkpoint_every == 0) {
        CpscfCheckpoint ckpt;
        ckpt.direction = s.direction;
        ckpt.iteration = s.iteration;
        ckpt.mixing = s.mixing;
        ckpt.last_delta = s.delta;
        ckpt.p1 = *s.p1;
        store.save(key, ckpt);
        ctx.checkpoint_iteration = s.iteration;
      }
      return core::CpscfAction::Continue;
    };

    try {
      auto result = run(opts);
      stats.abft_corrections = abft_scope.stats().corrections;
      if (ctx.cancelled)
        throw_cancelled(what, direction, attempt, ctx.last_iteration);
      if (!ctx.fault && !aborted_of(result)) return result;  // healthy
      // An abort this driver never requested means the abort decision
      // itself was corrupted in transit -- treat it as a fault, not as a
      // legitimate early exit.
      last_reason = ctx.fault
                        ? ctx.fault_reason
                        : "solver aborted without a recovery request "
                          "(corrupted control payload?)";
      last_rank_failure = false;
    } catch (const parallel::RankFailure& e) {
      last_reason = e.what();
      last_rank_failure = true;
      last_failed_rank = e.failed_rank();
      last_observer_rank = e.observer_rank();
    } catch (const parallel::CollectiveTimeout& e) {
      last_reason = e.what();
      last_rank_failure = false;
    } catch (const parallel::PayloadCorruption& e) {
      // A verified collective caught in-flight corruption: the payload is
      // poisoned, so roll back like any other fault.
      last_reason = e.what();
      last_rank_failure = false;
      ++stats.payload_corruptions;
    } catch (const InvariantViolation& e) {
      // A physics guard tripped past the in-place rungs (ABFT correction,
      // local recompute): the state is corrupt -- rollback and retry.
      last_reason = e.what();
      last_rank_failure = false;
      ++stats.invariant_violations;
    } catch (const linalg::AbftError& e) {
      // Multi-element (uncorrectable) product corruption: detection without
      // location, so in-place repair is off the table -- rollback.
      last_reason = e.what();
      last_rank_failure = false;
    } catch (const OutOfMemoryBudget& e) {
      // Memory exhaustion enters the same ladder: the governor turned a
      // would-be std::bad_alloc into a structured fault, and each retry
      // below first walks one more relief rung so the re-attempt fits.
      last_reason = e.what();
      last_rank_failure = false;
      oom_fault = true;
      ++stats.oom_events;
      obs::trace_instant("recovery/oom");
    }
    stats.abft_corrections = abft_scope.stats().corrections;
    ++stats.faults_detected;
    obs::trace_instant("recovery/fault_detected");
    stats.wasted_iterations += static_cast<std::size_t>(
        std::max(0, ctx.last_iteration - ctx.checkpoint_iteration));
    AEQP_LOG_INFO << what << ": fault on attempt " << attempt + 1 << " ("
                  << last_reason << "); rolling back to iteration "
                  << ctx.checkpoint_iteration;

    if (oom_fault && ropt.memory_relief) {
      ++oom_rung;
      stats.relief_actions += apply_relief(oom_rung);
    }

    if (attempt >= ropt.max_retries) {
      std::ostringstream msg;
      msg << what << ": retry budget exhausted for direction " << direction
          << " after " << attempt + 1 << " attempts: " << stats.faults_detected
          << " faults detected, " << stats.restores
          << " checkpoint restores, last failure: " << last_reason;
      // A dead rank re-fails every retry at the same world size; without
      // elastic shrink the budget runs out against it. Surface the failure
      // structurally so callers can identify the culprit rank (RankFailure
      // derives from Error, so untyped handlers still work).
      // Retry exhaustion is terminal for the job: dump the flight recorder
      // before the structured error escapes to the caller.
      obs::flight_on_error(
          last_rank_failure ? "RankFailure"
                            : (oom_fault ? "OutOfMemoryBudget" : "Error"),
          msg.str());
      if (last_rank_failure)
        throw parallel::RankFailure(last_failed_rank, last_observer_rank,
                                    msg.str());
      if (oom_fault)
        throw OutOfMemoryBudget(
            "recovery/" + key, 0,
            static_cast<std::size_t>(mem_budget_bytes()),
            static_cast<std::size_t>(std::max<std::int64_t>(mem_in_use(), 0)));
      AEQP_THROW(msg.str());
    }
  }
}

/// The elastic retry loop of the parallel front-end (escalation ladder:
/// retry -> damped retry -> shrink + buddy-restore + re-map + resume). Kept
/// separate from run_recovered: it tracks the set of surviving ranks across
/// attempts, classifies repeated same-rank failures as permanent, and falls
/// back to in-memory buddy replicas when the file checkpoint is lost
/// together with the rank that wrote it.
core::ParallelDfptResult run_elastic(CheckpointStore& store,
                                     const RecoveryOptions& ropt,
                                     RecoveryStats& stats,
                                     const scf::ScfResult& ground,
                                     const core::ParallelDfptOptions& base,
                                     int direction) {
  stats = RecoveryStats{};
  const std::string key =
      ropt.checkpoint_key + "-dir" + std::to_string(direction);
  store.remove(key);  // a stale checkpoint from a previous run must not leak in

  // Survivor set in ORIGINAL rank ids, kept strictly increasing; the solver
  // renumbers densely so current world slot s maps to active[s].
  std::vector<std::size_t> active(base.ranks);
  std::iota(active.begin(), active.end(), std::size_t{0});
  BuddyReplicator buddy(base.ranks);
  // Buddy replicas are reclaimable under memory pressure: spilled to the
  // disk-backed store they survive BOTH the holder's death and the relief
  // that evicted them. Registered for the lifetime of this solve only.
  buddy.set_spill_store(&store);
  std::optional<ScopedMemReclaimer> buddy_spill;
  if (ropt.memory_relief)
    buddy_spill.emplace("buddy_spill", [&buddy] { return buddy.spill(); });

  // Straggler defense: the detector persists across attempts (slowness
  // evidence and classifications survive rollbacks), as do the measured
  // speed weights once the rebalance rung has fired. `last_degraded`
  // prevents oscillation: only a degraded set with a NEW member re-fires
  // the rung -- a rank recovering does not (the weights stay sticky, which
  // is safe: a healthy rank merely carries a bit less work).
  std::unique_ptr<parallel::StragglerDetector> owned_straggler;
  parallel::StragglerDetector* straggler = base.straggler_detector;
  if (straggler == nullptr && ropt.straggler_defense) {
    owned_straggler = std::make_unique<parallel::StragglerDetector>(base.ranks);
    straggler = owned_straggler.get();
  }
  std::vector<double> rebalance_weights;
  std::vector<std::size_t> last_degraded;

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t repeat_rank = kNone;  // original id of the rank failing in a row
  int repeat_count = 0;
  std::string last_reason;
  bool last_rank_failure = false;
  std::size_t last_failed_original = 0;
  std::size_t last_observer_rank = 0;
  const linalg::AbftStatsScope abft_scope;
  // Relief-ladder state persists across attempts: once a rung has shed
  // state, every later attempt runs in the reduced-footprint configuration.
  int oom_rung = 0;
  bool relief_drop_point_cache = false;
  std::size_t relief_pack_bytes = 0;     // 0 = untouched
  std::size_t relief_batch_points = 0;   // 0 = untouched

  for (int attempt = 0;; ++attempt) {
    AttemptContext ctx;
    bool oom_fault = false;
    bool timeout_fault = false;
    core::ParallelDfptOptions popts = base;
    popts.active_ranks = active.size() == base.ranks
                             ? std::vector<std::size_t>{}
                             : active;
    popts.straggler_detector = straggler;
    popts.rank_speed_weights = rebalance_weights;
    // A rebalanced world distributes the Poisson producer as well: the
    // replicated producer runs at the slowest rank's speed no matter how
    // the grid batches are re-homed, which would cap the rebalance win.
    // Bit-identical by construction (see ParallelDfptOptions), so flipping
    // it on mid-recovery never perturbs the trajectory.
    if (!rebalance_weights.empty()) popts.distribute_rho = true;
    if (relief_drop_point_cache) popts.cache_point_evals = false;
    if (relief_pack_bytes != 0) popts.pack_bytes = relief_pack_bytes;
    if (relief_batch_points != 0) popts.batch_points = relief_batch_points;
    if (attempt >= 2)
      popts.dfpt.mixing =
          base.dfpt.mixing * std::pow(ropt.mixing_damping, attempt - 1);

    if (attempt > 0) {
      ++stats.retries;
      obs::trace_instant("recovery/retry");
      std::optional<CpscfCheckpoint> ckpt = store.try_load_cpscf(key);
      if (!ckpt) {
        // Diskless fallback: the CPSCF state is replicated on every rank,
        // so ANY replica whose holder survived restores it. A torn replica
        // is skipped -- another buddy may hold a good one.
        for (std::size_t owner = 0; owner < base.ranks && !ckpt; ++owner) {
          const auto blob = buddy.blob_of(owner);
          if (!blob) continue;
          if (std::find(active.begin(), active.end(), blob->holder) ==
              active.end())
            continue;
          try {
            ckpt = deserialize_cpscf(
                blob->bytes, "buddy replica of rank " + std::to_string(owner));
            ++stats.buddy_restores;
            obs::trace_instant("recovery/buddy_restore");
            AEQP_LOG_INFO << "RecoveryDriver[elastic]: restored iteration "
                          << ckpt->iteration << " from the replica of rank "
                          << owner << " held by rank " << blob->holder;
          } catch (const Error&) {
          }
        }
      }
      if (ckpt && ckpt->iteration >= 1 &&
          ckpt->iteration < popts.dfpt.max_iterations) {
        ctx.checkpoint_iteration = ckpt->iteration;
        ctx.prev_delta = ckpt->last_delta;
        auto ws = std::make_shared<core::CpscfWarmStart>();
        ws->iteration = ckpt->iteration;
        ws->p1 = std::move(ckpt->p1);
        popts.dfpt.warm_start = std::move(ws);
        ++stats.restores;
        obs::trace_instant("recovery/rollback");
      }
      backoff_sleep(ropt, key, attempt);
      throw_if_cancelled(ropt, "RecoveryDriver[elastic]", direction, attempt,
                         ctx.checkpoint_iteration);
    }

    popts.dfpt.observer = [&](const core::CpscfIterationState& s) {
      ctx.last_iteration = s.iteration;
      if (ropt.cancel && ropt.cancel()) {
        ctx.cancelled = true;
        return core::CpscfAction::Abort;
      }
      const HealthReport hr =
          check_iteration_health(*s.p1, s.delta, ctx.prev_delta, ropt.health);
      if (!hr.healthy) {
        ctx.fault = true;
        ctx.fault_reason = "iteration " + std::to_string(s.iteration) +
                           " unhealthy: " + hr.reason;
        return core::CpscfAction::Abort;
      }
      ctx.prev_delta = s.delta;
      // Soft-watermark polling, same contract as the non-elastic loop.
      if (ropt.memory_relief && mem_pressure().over_soft) {
        obs::trace_instant("membudget/soft_watermark");
        if (relieve_pressure() > 0) ++stats.relief_actions;
      }
      if (s.iteration % ropt.checkpoint_every == 0) {
        CpscfCheckpoint ckpt;
        ckpt.direction = s.direction;
        ckpt.iteration = s.iteration;
        ckpt.mixing = s.mixing;
        ckpt.last_delta = s.delta;
        ckpt.p1 = *s.p1;
        store.save(key, ckpt);
        ctx.checkpoint_iteration = s.iteration;
      }
      // Straggler rung trigger: close the work window and reclassify.
      // Placed AFTER the checkpoint save so the rebalance re-entry
      // warm-starts at this very iteration -- a rebalance wastes zero
      // iterations. Only a NEW degraded rank aborts; a set the rung has
      // already rebalanced around (or a subset -- someone recovered) keeps
      // converging under the current weights.
      if (straggler != nullptr) {
        straggler->classify();
        if (straggler->any_degraded()) {
          const auto degraded = straggler->degraded_ranks();
          if (!degraded_subset_of(degraded, last_degraded)) {
            ctx.straggler = true;
            std::string who;
            for (const auto r : degraded)
              who += (who.empty() ? "" : ",") + std::to_string(r);
            ctx.fault_reason = "rank(s) " + who +
                               " classified degraded at iteration " +
                               std::to_string(s.iteration) +
                               "; rebalancing before any shrink";
            return core::CpscfAction::Abort;
          }
        }
      }
      return core::CpscfAction::Continue;
    };
    // Buddy replication rides the per-iteration hook: the hook runs after
    // the observer's abort broadcast, so only health-validated iterations
    // are mirrored, on the same cadence as the file checkpoint.
    popts.rank_hook = [&](parallel::Communicator& comm,
                          const core::CpscfIterationState& s) {
      if (s.iteration % ropt.checkpoint_every != 0) return;
      CpscfCheckpoint ckpt;
      ckpt.direction = s.direction;
      ckpt.iteration = s.iteration;
      ckpt.mixing = s.mixing;
      ckpt.last_delta = s.delta;
      ckpt.p1 = *s.p1;
      buddy.replicate(comm, serialize(ckpt));
    };

    try {
      auto result = core::solve_direction_parallel(ground, popts, direction);
      stats.abft_corrections = abft_scope.stats().corrections;
      if (ctx.cancelled)
        throw_cancelled("RecoveryDriver[elastic]", direction, attempt,
                        ctx.last_iteration);
      if (!ctx.fault && !result.direction.aborted) {
        stats.remap_seconds = result.stats.remap_seconds;
        result.stats.faults_detected = stats.faults_detected;
        result.stats.restores = stats.restores;
        result.stats.retries = stats.retries;
        result.stats.wasted_iterations = stats.wasted_iterations;
        result.stats.shrinks = stats.shrinks;
        result.stats.buddy_restores = stats.buddy_restores;
        result.stats.abft_corrections = stats.abft_corrections;
        result.stats.invariant_violations = stats.invariant_violations;
        result.stats.payload_corruptions = stats.payload_corruptions;
        result.stats.rebalances = stats.rebalances;
        result.stats.degraded_ranks =
            std::max(result.stats.degraded_ranks, stats.degraded_ranks);
        return result;
      }
      last_reason = ctx.fault || ctx.straggler
                        ? ctx.fault_reason
                        : "solver aborted without a recovery request "
                          "(corrupted control payload?)";
      last_rank_failure = false;
      repeat_rank = kNone;  // a health fault breaks a same-rank failure streak
      repeat_count = 0;
    } catch (const parallel::RankFailure& e) {
      last_reason = e.what();
      last_rank_failure = true;
      last_observer_rank = e.observer_rank();
      // The exception carries CURRENT world ids; map back through the
      // survivor list so the permanence classification follows the physical
      // (original) rank across renumberings.
      const std::size_t failed_current = e.failed_rank();
      last_failed_original =
          failed_current < active.size() ? active[failed_current] : kNone;
      if (last_failed_original == repeat_rank) {
        ++repeat_count;
      } else {
        repeat_rank = last_failed_original;
        repeat_count = 1;
      }
    } catch (const parallel::CollectiveTimeout& e) {
      // A timeout is the straggler rung's backstop signal: an extreme
      // slowdown can blow the (adaptive) deadline before the per-iteration
      // classification sees a full window, so the catch path reclassifies
      // below and rebalances instead of burning plain retries.
      last_reason = e.what();
      last_rank_failure = false;
      timeout_fault = true;
      repeat_rank = kNone;
      repeat_count = 0;
    } catch (const parallel::PayloadCorruption& e) {
      // In-flight corruption is transient by assumption (a struck message,
      // not a struck node): it rolls back but never drives a shrink.
      last_reason = e.what();
      last_rank_failure = false;
      ++stats.payload_corruptions;
      repeat_rank = kNone;
      repeat_count = 0;
    } catch (const InvariantViolation& e) {
      last_reason = e.what();
      last_rank_failure = false;
      ++stats.invariant_violations;
      repeat_rank = kNone;
      repeat_count = 0;
    } catch (const linalg::AbftError& e) {
      last_reason = e.what();
      last_rank_failure = false;
      repeat_rank = kNone;
      repeat_count = 0;
    } catch (const OutOfMemoryBudget& e) {
      // A budget breach is not a node death: it never drives a shrink
      // (shrinking RAISES per-rank memory). It walks the relief ladder.
      last_reason = e.what();
      last_rank_failure = false;
      oom_fault = true;
      ++stats.oom_events;
      repeat_rank = kNone;
      repeat_count = 0;
      obs::trace_instant("recovery/oom");
    }
    stats.abft_corrections = abft_scope.stats().corrections;
    stats.wasted_iterations += static_cast<std::size_t>(
        std::max(0, ctx.last_iteration - ctx.checkpoint_iteration));
    if (ctx.straggler) {
      // A slow rank is a performance event, not a fault: it does not count
      // toward faults_detected, and the checkpoint taken just before the
      // abort makes the re-entry resume at the same iteration.
      AEQP_LOG_INFO << "RecoveryDriver[elastic]: straggler on attempt "
                    << attempt + 1 << " (" << last_reason
                    << "); re-entering from iteration "
                    << ctx.checkpoint_iteration;
    } else {
      ++stats.faults_detected;
      obs::trace_instant("recovery/fault_detected");
      AEQP_LOG_INFO << "RecoveryDriver[elastic]: fault on attempt "
                    << attempt + 1 << " (" << last_reason
                    << "); rolling back to iteration "
                    << ctx.checkpoint_iteration;
    }

    // --- Pressure-relief ladder: one more rung per OOM fault. Rung 1
    //     sheds the point-eval cache (bit-identical re-evaluation), rung 2
    //     runs the reclaimer registry (warm cache, buddy spill), rung 3
    //     shrinks the pack window and grid batch through the tune knobs.
    if (oom_fault && ropt.memory_relief) {
      ++oom_rung;
      if (oom_rung >= 1 && !relief_drop_point_cache && base.cache_point_evals) {
        relief_drop_point_cache = true;
        ++stats.relief_actions;
        obs::trace_instant("membudget/relief_point_cache");
      }
      if (oom_rung >= 2 && relieve_pressure() > 0) ++stats.relief_actions;
      if (oom_rung >= 3 && relief_pack_bytes == 0) {
        relief_pack_bytes = std::max<std::size_t>(
            tune::pack_window_bytes(base.pack_bytes) / 4, std::size_t{4096});
        relief_batch_points = std::max<std::size_t>(
            tune::grid_batch_points(base.batch_points) / 2, std::size_t{16});
        ++stats.relief_actions;
        obs::trace_instant("membudget/relief_shrink_windows");
      }
    }

    // --- Rebalance rung: fires BEFORE the shrink rung. A degraded-but-
    //     alive rank keeps its place in the world; the next attempt re-homes
    //     grid batches around the measured speed weights
    //     (mapping::rebalance_for_slow_ranks), so the run completes at full
    //     world size with bit-identical results. The timeout backstop
    //     reclassifies here because an extreme slowdown may have surfaced
    //     as CollectiveTimeout between iteration boundaries. ---
    if (straggler != nullptr && (ctx.straggler || timeout_fault)) {
      if (timeout_fault) straggler->classify();
      const auto degraded = straggler->degraded_ranks();
      if (!degraded.empty() && degraded != last_degraded) {
        rebalance_weights = straggler->speed_weights();
        // Shed policy: a rank that earned a degraded verdict keeps only a
        // token share (see RecoveryOptions::rebalance_shed_weight) -- the
        // measured ratio understates how sick it is, and healthy ranks
        // absorb the shed work at full speed.
        for (const std::size_t r : degraded)
          if (r < rebalance_weights.size())
            rebalance_weights[r] =
                std::min(rebalance_weights[r], ropt.rebalance_shed_weight);
        last_degraded = degraded;
        ++stats.rebalances;
        stats.degraded_ranks =
            std::max(stats.degraded_ranks, degraded.size());
        obs::trace_instant("recovery/rebalance");
        std::string who;
        for (const auto r : degraded)
          who += (who.empty() ? "" : ",") + std::to_string(r);
        AEQP_LOG_INFO << "RecoveryDriver[elastic]: rebalancing around "
                         "degraded rank(s) "
                      << who << " at full world size ("
                      << active.size() << " ranks) before any shrink";
      }
    }

    // --- Escalation rung 3: a rank that fails on consecutive attempts is a
    //     dead node, not a glitch -- retrying at the same world size would
    //     fail forever. Shrink it away and resume on the survivors. ---
    if (last_rank_failure && repeat_rank != kNone &&
        repeat_count >= ropt.permanent_failure_threshold) {
      if (active.size() <= ropt.min_ranks) {
        std::ostringstream msg;
        msg << "RecoveryDriver[elastic]: rank " << repeat_rank
            << " permanently failed but the world is already at the min_ranks"
               " floor ("
            << ropt.min_ranks << "); retry budget abandoned for direction "
            << direction << ", last failure: " << last_reason;
        obs::flight_on_error("RankFailure", msg.str());
        throw parallel::RankFailure(repeat_rank, last_observer_rank,
                                    msg.str());
      }
      const std::size_t replicas_lost = buddy.drop_holder(repeat_rank);
      if (repeat_rank == active.front()) {
        // The dead rank hosted the checkpoint writer (current world slot
        // 0): model its node-local storage dying with it. The next restore
        // must come from a surviving buddy replica.
        store.remove(key);
      }
      active.erase(std::find(active.begin(), active.end(), repeat_rank));
      if (straggler != nullptr) {
        // The dead rank must not pin a stale "degraded" verdict, and its
        // slowness samples must stop counting toward the cross-rank median.
        straggler->retain(active);
        last_degraded.erase(
            std::remove(last_degraded.begin(), last_degraded.end(),
                        repeat_rank),
            last_degraded.end());
      }
      ++stats.shrinks;
      ++stats.lost_ranks;
      obs::trace_instant("recovery/shrink");
      AEQP_LOG_INFO << "RecoveryDriver[elastic]: rank " << repeat_rank
                    << " classified permanent after " << repeat_count
                    << " consecutive failures; shrinking the world to "
                    << active.size() << " survivors (" << replicas_lost
                    << " buddy replicas died with it)";
      repeat_rank = kNone;
      repeat_count = 0;
    }

    if (attempt >= ropt.max_retries) {
      std::ostringstream msg;
      msg << "RecoveryDriver[elastic]: retry budget exhausted for direction "
          << direction << " after " << attempt + 1 << " attempts: "
          << stats.faults_detected << " faults detected, " << stats.shrinks
          << " shrinks, " << stats.restores
          << " checkpoint restores, last failure: " << last_reason;
      obs::flight_on_error(
          last_rank_failure ? "RankFailure"
                            : (oom_fault ? "OutOfMemoryBudget" : "Error"),
          msg.str());
      if (last_rank_failure)
        throw parallel::RankFailure(
            last_failed_original == kNone ? 0 : last_failed_original,
            last_observer_rank, msg.str());
      if (oom_fault)
        throw OutOfMemoryBudget(
            "recovery/" + key, 0,
            static_cast<std::size_t>(mem_budget_bytes()),
            static_cast<std::size_t>(std::max<std::int64_t>(mem_in_use(), 0)));
      AEQP_THROW(msg.str());
    }
  }
}

}  // namespace

RecoveryDriver::RecoveryDriver(CheckpointStore& store, RecoveryOptions options)
    : store_(store), options_(std::move(options)) {
  AEQP_CHECK(options_.max_retries >= 0, "RecoveryDriver: negative retry budget");
  AEQP_CHECK(options_.checkpoint_every >= 1,
             "RecoveryDriver: checkpoint_every must be >= 1");
  AEQP_CHECK(options_.mixing_damping > 0.0 && options_.mixing_damping <= 1.0,
             "RecoveryDriver: mixing_damping must be in (0, 1]");
  AEQP_CHECK(options_.backoff_jitter >= 0.0 && options_.backoff_jitter < 1.0,
             "RecoveryDriver: backoff_jitter must be in [0, 1)");
}

core::DfptDirectionResult RecoveryDriver::solve_direction(
    const scf::ScfResult& ground, core::DfptOptions options, int direction) {
  return run_recovered(
      store_, options_, stats_, options, direction, "RecoveryDriver[serial]",
      [&](const core::DfptOptions& opts) {
        return core::DfptSolver(ground, opts).solve_direction(direction);
      },
      [](const core::DfptDirectionResult& r) { return r.aborted; },
      // The serial solver holds no shed-able caches of its own; relief is
      // the process-wide reclaimer registry.
      [](int /*rung*/) -> std::size_t {
        return relieve_pressure() > 0 ? std::size_t{1} : std::size_t{0};
      });
}

core::ParallelDfptResult RecoveryDriver::solve_direction_parallel(
    const scf::ScfResult& ground, core::ParallelDfptOptions options,
    int direction) {
  if (options_.elastic) {
    AEQP_CHECK(options_.min_ranks >= 1,
               "RecoveryDriver: min_ranks must be >= 1");
    AEQP_CHECK(options_.permanent_failure_threshold >= 1,
               "RecoveryDriver: permanent_failure_threshold must be >= 1");
    AEQP_CHECK(options.active_ranks.empty(),
               "RecoveryDriver: elastic recovery owns the active-rank set");
    return run_elastic(store_, options_, stats_, ground, options, direction);
  }
  auto result = run_recovered(
      store_, options_, stats_, options.dfpt, direction,
      "RecoveryDriver[parallel]",
      [&](const core::DfptOptions& opts) {
        core::ParallelDfptOptions popts = options;
        popts.dfpt = opts;
        return core::solve_direction_parallel(ground, popts, direction);
      },
      [](const core::ParallelDfptResult& r) { return r.direction.aborted; },
      // Pressure-relief ladder, cheapest rung first; mutations of `options`
      // persist across the remaining attempts of this solve.
      [&options](int rung) -> std::size_t {
        std::size_t actions = 0;
        if (rung >= 1 && options.cache_point_evals) {
          options.cache_point_evals = false;
          ++actions;
          obs::trace_instant("membudget/relief_point_cache");
        }
        if (rung >= 2 && relieve_pressure() > 0) ++actions;
        if (rung >= 3) {
          const std::size_t pack = tune::pack_window_bytes(options.pack_bytes);
          const std::size_t batch =
              tune::grid_batch_points(options.batch_points);
          const std::size_t shrunk_pack =
              std::max<std::size_t>(pack / 4, std::size_t{4096});
          const std::size_t shrunk_batch =
              std::max<std::size_t>(batch / 2, std::size_t{16});
          if (shrunk_pack < pack || shrunk_batch < batch) {
            options.pack_bytes = shrunk_pack;
            options.batch_points = shrunk_batch;
            ++actions;
            obs::trace_instant("membudget/relief_shrink_windows");
          }
        }
        return actions;
      });
  result.stats.faults_detected = stats_.faults_detected;
  result.stats.restores = stats_.restores;
  result.stats.retries = stats_.retries;
  result.stats.wasted_iterations = stats_.wasted_iterations;
  result.stats.abft_corrections = stats_.abft_corrections;
  result.stats.invariant_violations = stats_.invariant_violations;
  result.stats.payload_corruptions = stats_.payload_corruptions;
  return result;
}

obs::ScopedMetricsSource register_metrics(const RecoveryStats& stats,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&stats, prefix = std::move(prefix)](std::vector<obs::MetricSample>& out) {
        const auto push = [&](const char* name, double v) {
          out.push_back({prefix + "/" + name, v});
        };
        push("faults_detected", static_cast<double>(stats.faults_detected));
        push("restores", static_cast<double>(stats.restores));
        push("retries", static_cast<double>(stats.retries));
        push("wasted_iterations", static_cast<double>(stats.wasted_iterations));
        push("shrinks", static_cast<double>(stats.shrinks));
        push("lost_ranks", static_cast<double>(stats.lost_ranks));
        push("buddy_restores", static_cast<double>(stats.buddy_restores));
        push("remap_seconds", stats.remap_seconds);
        push("abft_corrections", static_cast<double>(stats.abft_corrections));
        push("invariant_violations",
             static_cast<double>(stats.invariant_violations));
        push("payload_corruptions",
             static_cast<double>(stats.payload_corruptions));
        push("oom_events", static_cast<double>(stats.oom_events));
        push("relief_actions", static_cast<double>(stats.relief_actions));
        push("rebalances", static_cast<double>(stats.rebalances));
        push("degraded_ranks", static_cast<double>(stats.degraded_ranks));
      });
}

void attach_scf_checkpointing(scf::ScfOptions& options, CheckpointStore& store,
                              const std::string& key, int every) {
  AEQP_CHECK(every >= 1, "attach_scf_checkpointing: every must be >= 1");
  options.observer = [&store, key, every](const scf::ScfIterationState& s) {
    if (s.iteration % every == 0) {
      ScfCheckpoint ckpt;
      ckpt.iteration = s.iteration;
      ckpt.last_delta = s.delta;
      ckpt.density_matrix = *s.density_matrix;
      ckpt.diis_history = s.mixer->export_history();
      store.save(key, ckpt);
    }
    return scf::ScfAction::Continue;
  };
}

bool resume_scf_from_checkpoint(scf::ScfOptions& options,
                                const CheckpointStore& store,
                                const std::string& key) {
  auto ckpt = store.try_load_scf(key);
  if (!ckpt) return false;
  if (ckpt->iteration < 1 || ckpt->iteration >= options.max_iterations)
    return false;
  auto ws = std::make_shared<scf::ScfWarmStart>();
  ws->iteration = ckpt->iteration;
  ws->density_matrix = std::move(ckpt->density_matrix);
  ws->diis_history = std::move(ckpt->diis_history);
  options.warm_start = std::move(ws);
  return true;
}

}  // namespace aeqp::resilience
