#pragma once

/// \file buddy.hpp
/// In-memory buddy replication of checkpoint blobs (the diskless-checkpoint
/// half of elastic recovery). Every rank serializes its checkpoint slice
/// into a framed blob (see checkpoint.hpp) and mirrors it to its *buddy*,
/// the next rank in the current world's ring order, through the ordinary
/// collective layer. When a rank later dies permanently, its last
/// checkpoint is restorable from the buddy's memory -- no filesystem state
/// of the dead rank is needed, which is exactly the property that lets a
/// shrunken world resume after losing a node together with its node-local
/// storage.
///
/// Blobs are addressed by *original* (pre-shrink) rank ids, so the mirror
/// map stays meaningful across Cluster::shrink renumberings, and every blob
/// records which original rank holds it: a restore is only valid when the
/// holder itself survived, which RecoveryDriver checks before trusting a
/// replica.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/cluster.hpp"
#include "resilience/checkpoint.hpp"

namespace aeqp::resilience {

/// One mirrored checkpoint blob: the framed bytes plus the original rank
/// holding the replica in its memory. A spilled blob's bytes live in the
/// spill store instead of memory; blob_of() reloads them transparently.
struct BuddyBlob {
  std::size_t holder = 0;  ///< original rank whose memory holds the replica
  std::vector<unsigned char> bytes;
  bool spilled = false;    ///< bytes moved to the disk-backed spill store
};

/// Counters of what the replicator did (mirrored into obs metrics).
struct BuddyReplicatorStats {
  std::size_t rounds = 0;            ///< replicate() calls completed
  std::size_t blobs_mirrored = 0;    ///< blobs stored at a buddy
  std::size_t bytes_mirrored = 0;    ///< framed bytes moved to buddies
  std::size_t slots_skipped = 0;     ///< slots dropped: corrupt size announce
  std::size_t blobs_spilled = 0;     ///< replicas moved to the spill store
  std::size_t bytes_spilled = 0;     ///< bytes freed from memory by spilling
};

/// Mirrors per-rank checkpoint blobs across the world. The object is shared
/// by all rank threads of a simulated cluster (like the solver's shared
/// output buffers) and must outlive the runs that use it; all accesses are
/// internally synchronized.
class BuddyReplicator {
public:
  /// `world_size` is the ORIGINAL world size; blobs are slotted by
  /// original rank id.
  explicit BuddyReplicator(std::size_t world_size);

  /// Collective over the communicator's (possibly shrunken) world: every
  /// rank contributes its serialized blob, and each rank stores in its
  /// memory the blob of the peer it is buddy for -- rank at world slot s is
  /// buddy of slot (s - 1 + world) % world. Implemented as a deterministic
  /// schedule of size+payload broadcasts, so every rank participates in the
  /// same collective sequence (fault plans stay addressable). A world of
  /// one rank keeps its own blob (self-buddy): degenerate but non-lossy.
  void replicate(parallel::Communicator& comm,
                 std::span<const unsigned char> blob);

  /// Latest replica of `original_rank`'s checkpoint, if any buddy holds
  /// one. The caller decides whether the holder is still alive.
  [[nodiscard]] std::optional<BuddyBlob> blob_of(std::size_t original_rank) const;

  /// Forget every replica HELD BY `original_rank` (its memory died with
  /// it); returns how many replicas were lost. Spilled replicas survive --
  /// their bytes live in the shared spill store, not the dead rank's
  /// memory, which is exactly what spilling buys.
  std::size_t drop_holder(std::size_t original_rank);

  /// Attach the disk-backed store spill() writes to (must outlive the
  /// replicator's use); nullptr detaches, making spill() a no-op.
  void set_spill_store(const CheckpointStore* store);

  /// Memory-pressure relief: move every resident replica to the spill
  /// store and free its in-memory bytes (decrementing the
  /// "resilience/buddy_replicas" gauge). Returns bytes freed. The
  /// reclaimer the elastic recovery loop registers with the membudget
  /// relief ladder.
  std::int64_t spill();

  [[nodiscard]] std::size_t world_size() const { return world_size_; }
  [[nodiscard]] BuddyReplicatorStats stats() const;

private:
  [[nodiscard]] static std::string spill_key(std::size_t original_rank);
  std::size_t world_size_;
  mutable std::mutex mutex_;
  std::vector<std::optional<BuddyBlob>> blobs_;  ///< by original rank id
  const CheckpointStore* spill_store_ = nullptr;
  BuddyReplicatorStats stats_;
};

/// Register `replicator`'s counters as an obs metrics source
/// ("<prefix>/rounds", "<prefix>/blobs_mirrored", "<prefix>/bytes_mirrored").
[[nodiscard]] obs::ScopedMetricsSource register_metrics(
    const BuddyReplicator& replicator, std::string prefix = "buddy");

}  // namespace aeqp::resilience
