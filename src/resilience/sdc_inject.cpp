#include "resilience/sdc_inject.hpp"

#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_ident.hpp"
#include "obs/trace.hpp"

namespace aeqp::resilience {

const char* sdc_kind_name(SdcKind kind) {
  switch (kind) {
    case SdcKind::BitFlip: return "bit-flip";
    case SdcKind::NanPayload: return "nan-payload";
    case SdcKind::InfPayload: return "inf-payload";
  }
  return "?";
}

SdcPlan& SdcPlan::add(const SdcEvent& event) {
  AEQP_CHECK(!event.site.empty(), "SdcPlan: event site must be non-empty");
  AEQP_CHECK(event.bit >= 0 && event.bit <= 63,
             "SdcPlan: bit " + std::to_string(event.bit) +
                 " out of range 0..63");
  events_.push_back(event);
  return *this;
}

SdcPlan SdcPlan::random(std::uint64_t seed, std::size_t n_events,
                        const std::vector<std::string>& sites,
                        std::size_t max_invocation) {
  AEQP_CHECK(!sites.empty() || n_events == 0, "SdcPlan::random: empty site set");
  AEQP_CHECK(max_invocation >= 1 || n_events == 0,
             "SdcPlan::random: empty invocation window");
  Rng rng(seed);
  SdcPlan plan;
  for (std::size_t i = 0; i < n_events; ++i) {
    SdcEvent e;
    const std::size_t kind = rng.uniform_index(3);
    e.kind = kind == 0 ? SdcKind::BitFlip
                       : (kind == 1 ? SdcKind::NanPayload : SdcKind::InfPayload);
    e.site = sites[rng.uniform_index(sites.size())];
    e.invocation = rng.uniform_index(max_invocation);
    e.element = rng.uniform_index(4096);
    e.bit = 48 + static_cast<int>(rng.uniform_index(16));
    plan.add(e);
  }
  return plan;
}

SdcInjector::SdcInjector(SdcPlan plan) {
  for (const auto& e : plan.events()) events_.push_back(Armed{e, 0, false});
}

void SdcInjector::corrupt(const char* site, std::span<double> data) {
  const int rank = thread_rank();
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.probes;
  const std::size_t invocation = invocations_[site]++;
  if (data.empty()) return;
  for (auto& armed : events_) {
    if (armed.done || armed.event.site != site) continue;
    if (armed.event.rank >= 0 && armed.event.rank != rank) continue;
    // Transient events (and the first firing of permanent ones) wait for
    // their exact planned invocation; a permanent event that already fired
    // strikes at every later matching probe, like a stuck compute unit.
    if (invocation != armed.event.invocation &&
        (armed.event.transient || armed.fired == 0))
      continue;
    double& slot = data[armed.event.element % data.size()];
    switch (armed.event.kind) {
      case SdcKind::BitFlip: {
        std::uint64_t bits;
        std::memcpy(&bits, &slot, sizeof(bits));
        bits ^= std::uint64_t{1} << (armed.event.bit & 63);
        std::memcpy(&slot, &bits, sizeof(bits));
        ++stats_.bit_flips;
        break;
      }
      case SdcKind::NanPayload:
        slot = std::numeric_limits<double>::quiet_NaN();
        ++stats_.nans_planted;
        break;
      case SdcKind::InfPayload:
        slot = std::numeric_limits<double>::infinity();
        ++stats_.infs_planted;
        break;
    }
    ++armed.fired;
    if (armed.event.transient) armed.done = true;
    ++stats_.corruptions;
    obs::trace_instant("sdc/inject");
  }
}

SdcInjectorStats SdcInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SdcInjector::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& armed : events_)
    if (armed.fired == 0) ++n;
  return n;
}

std::size_t SdcInjector::invocations(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = invocations_.find(site);
  return it == invocations_.end() ? 0 : it->second;
}

obs::ScopedMetricsSource register_metrics(const SdcInjector& injector,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&injector,
       prefix = std::move(prefix)](std::vector<obs::MetricSample>& out) {
        const SdcInjectorStats s = injector.stats();
        out.push_back({prefix + "/corruptions",
                       static_cast<double>(s.corruptions)});
        out.push_back({prefix + "/bit_flips",
                       static_cast<double>(s.bit_flips)});
        out.push_back({prefix + "/nans_planted",
                       static_cast<double>(s.nans_planted)});
        out.push_back({prefix + "/infs_planted",
                       static_cast<double>(s.infs_planted)});
        out.push_back({prefix + "/probes", static_cast<double>(s.probes)});
      });
}

}  // namespace aeqp::resilience
