#pragma once

/// \file checkpoint.hpp
/// Versioned, checksummed binary checkpointing of iterative solver state,
/// so a run interrupted by a fault can resume bit-identically from the last
/// good iteration (the resilience requirement the exascale roadmap papers
/// name as first-class; see docs/resilience.md).
///
/// File format (native endianness, guarded by the version field):
///   u32 magic 'AEQP' | u32 format version | u32 kind tag |
///   u64 payload bytes | payload | u32 CRC-32 of the payload
/// Writes go to a uniquely named temp file (`<key>.ckpt.tmp.<nonce>`, so
/// concurrent writers -- e.g. two simulated ranks checkpointing the same
/// key -- can never interleave into one torn temp file) that is flushed,
/// close-checked, and atomically renamed into `<key>.ckpt`; a rank killed
/// mid-write leaves at worst a stale temp file, never a torn checkpoint
/// that the CRC load path could half-accept. Readers validate magic,
/// version, kind, length, and CRC before deserializing.
///
/// The same framed format doubles as the wire format of in-memory buddy
/// replication (see buddy.hpp): serialize()/deserialize_cpscf() produce and
/// validate framed blobs without touching a filesystem, so a dead rank's
/// checkpoint slice is restorable from its buddy's memory alone.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32.hpp"
#include "linalg/matrix.hpp"

namespace aeqp::resilience {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of a byte range. The
/// implementation moved to common/crc32.hpp so the collective layer can
/// verify payloads too; this re-export keeps existing callers working (a
/// using-declaration names the same entity, so code that opens both
/// namespaces still sees exactly one crc32).
using ::aeqp::crc32;

/// Current checkpoint format version; bumped on any layout change.
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// State of one CPSCF (DFPT) direction at the end of an iteration. The
/// response potential is a pure function of P^(1), so checkpointing the
/// response density matrix plus counters is enough to resume bit-identically.
struct CpscfCheckpoint {
  int direction = 0;
  int iteration = 0;       ///< CPSCF iterations completed
  double mixing = 0.0;     ///< mixing factor in effect when saved
  double last_delta = 0.0; ///< max |Delta P^(1)| of the saved iteration
  linalg::Matrix p1;       ///< response density matrix
};

/// State of one SCF run at the end of an iteration: density matrix plus the
/// DIIS history (pairs of Hamiltonian and residual), which restores the
/// mixer exactly.
struct ScfCheckpoint {
  int iteration = 0;
  double last_delta = 0.0;
  linalg::Matrix density_matrix;
  std::vector<std::pair<linalg::Matrix, linalg::Matrix>> diis_history;
};

/// Serialize a checkpoint into a self-validating framed blob (header +
/// payload + CRC, the exact on-disk format) for in-memory replication.
[[nodiscard]] std::vector<unsigned char> serialize(const CpscfCheckpoint& ckpt);
[[nodiscard]] std::vector<unsigned char> serialize(const ScfCheckpoint& ckpt);

/// Validate and decode a framed blob produced by serialize() (or read from
/// a checkpoint file). Throws aeqp::Error on truncation, version/kind
/// mismatch, or CRC failure; `context` names the blob in error messages.
[[nodiscard]] CpscfCheckpoint deserialize_cpscf(
    std::span<const unsigned char> blob, const std::string& context = "blob");
[[nodiscard]] ScfCheckpoint deserialize_scf(
    std::span<const unsigned char> blob, const std::string& context = "blob");

/// Directory of named checkpoints with atomic write-then-rename saves and
/// CRC-validated loads.
class CheckpointStore {
public:
  /// Creates `directory` (and parents) if missing.
  explicit CheckpointStore(std::filesystem::path directory);

  [[nodiscard]] const std::filesystem::path& directory() const {
    return directory_;
  }
  [[nodiscard]] std::filesystem::path path_of(const std::string& key) const;

  void save(const std::string& key, const CpscfCheckpoint& ckpt) const;
  void save(const std::string& key, const ScfCheckpoint& ckpt) const;

  /// Load and validate; throws aeqp::Error on a missing, truncated,
  /// version-mismatched, or corrupt (CRC) checkpoint.
  [[nodiscard]] CpscfCheckpoint load_cpscf(const std::string& key) const;
  [[nodiscard]] ScfCheckpoint load_scf(const std::string& key) const;

  /// Like load_*, but a missing file yields nullopt (corruption still
  /// throws -- a damaged checkpoint should never be silently skipped).
  [[nodiscard]] std::optional<CpscfCheckpoint> try_load_cpscf(
      const std::string& key) const;
  [[nodiscard]] std::optional<ScfCheckpoint> try_load_scf(
      const std::string& key) const;

  /// Raw-blob tier for disk spill (the membudget relief ladder spills buddy
  /// replicas here): the bytes are stored verbatim inside a framed file of
  /// their own kind tag, so spilled data gets the same magic/version/CRC
  /// validation as checkpoints on reload.
  void save_blob(const std::string& key,
                 std::span<const unsigned char> blob) const;
  /// Missing file yields nullopt; corruption (CRC, truncation) throws.
  [[nodiscard]] std::optional<std::vector<unsigned char>> try_load_blob(
      const std::string& key) const;

  [[nodiscard]] bool exists(const std::string& key) const;

  /// Delete the checkpoint under `key`. Returns true when a file was
  /// removed, false when none existed; a filesystem failure (permissions,
  /// I/O error) throws aeqp::Error carrying the OS error text instead of
  /// being silently swallowed -- a long-lived server that cannot
  /// garbage-collect its checkpoints is leaking disk and must know.
  bool remove(const std::string& key) const;

  /// A sub-store rooted at `<directory>/<ns>` -- the per-job namespace a
  /// long-lived server gives every admitted job, so concurrent jobs can use
  /// identical keys ("cpscf-dir2") without colliding and a job's state can
  /// be garbage-collected wholesale with clear() on terminal
  /// success/failure. `ns` obeys the same syntax as a key (non-empty, no
  /// path separators).
  [[nodiscard]] CheckpointStore scoped(const std::string& ns) const;

  /// Delete every checkpoint (and stale temp file) in this store's own
  /// directory, non-recursively; returns the number of files removed.
  /// Filesystem failures throw aeqp::Error. The terminal-state hygiene hook
  /// of per-job namespaces: nothing outlives the job that wrote it.
  std::size_t clear() const;

private:
  std::filesystem::path directory_;
};

}  // namespace aeqp::resilience
