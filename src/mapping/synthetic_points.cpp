#include "mapping/synthetic_points.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace aeqp::mapping {

PointCloud synthetic_point_cloud(const grid::Structure& structure,
                                 std::size_t points_per_atom, std::uint64_t seed,
                                 double max_radius) {
  AEQP_CHECK(points_per_atom >= 1, "synthetic_point_cloud: need >= 1 point/atom");
  Rng rng(seed);
  PointCloud cloud;
  cloud.positions.reserve(structure.size() * points_per_atom);
  cloud.parent_atom.reserve(structure.size() * points_per_atom);
  for (std::size_t a = 0; a < structure.size(); ++a) {
    const Vec3 c = structure.atom(a).pos;
    for (std::size_t k = 0; k < points_per_atom; ++k) {
      // Log-distributed radius mimics the radial mesh density profile.
      const double r = max_radius * std::pow(rng.uniform(), 2.5) + 1e-3;
      // Uniform direction by rejection.
      Vec3 u;
      for (;;) {
        u = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
        const double n2 = u.norm2();
        if (n2 > 0.05 && n2 <= 1.0) {
          u = u / std::sqrt(n2);
          break;
        }
      }
      cloud.positions.push_back(c + r * u);
      cloud.parent_atom.push_back(static_cast<std::uint32_t>(a));
    }
  }
  return cloud;
}

}  // namespace aeqp::mapping
