#pragma once

/// \file hamiltonian_analysis.hpp
/// Memory and reuse analysis behind paper Fig. 9.
///
/// Fig. 9(a): per-process Hamiltonian storage. Under the legacy mapping a
/// process touches delocalized atoms, so it must keep the full system's
/// sparse Hamiltonian in CSR form; under the locality-enhancing mapping it
/// keeps only the dense block over its local atoms plus their interacting
/// neighbours.
///
/// Fig. 9(c): number of cubic splines performed in the Rho phase. Each
/// process builds the rho_multipole / delta_v_hart_part splines of every
/// atom relevant to its grid points, so scattering an atom's points across
/// processes replicates its splines; gathering them enables reuse.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "basis/element.hpp"
#include "grid/structure.hpp"
#include "linalg/matrix.hpp"
#include "mapping/task_mapping.hpp"
#include "obs/memaudit.hpp"

namespace aeqp::mapping {

/// Number of basis functions contributed by each atom of the structure.
std::vector<std::size_t> basis_function_counts(const grid::Structure& structure,
                                               basis::BasisTier tier);

/// Sparsity pattern statistics of the global Hamiltonian: two orbitals
/// interact when their atoms lie within `interaction_cutoff` (= 2 r_cut).
struct SparsityStats {
  std::size_t n_basis = 0;       ///< total orbital count N_b
  std::size_t nnz = 0;           ///< nonzero elements of the global H
  std::size_t csr_bytes = 0;     ///< CSR storage: values + col idx + row ptr
  std::size_t dense_bytes = 0;   ///< N_b^2 doubles for comparison
  [[nodiscard]] double fill_fraction() const {
    return n_basis ? static_cast<double>(nnz) /
                         (static_cast<double>(n_basis) * n_basis)
                   : 0.0;
  }
};

/// Analyze the global Hamiltonian sparsity with a cell-list neighbour
/// search (O(N) for bounded density).
SparsityStats global_hamiltonian_sparsity(const grid::Structure& structure,
                                          const std::vector<std::size_t>& nb_per_atom,
                                          double interaction_cutoff);

/// Per-rank Hamiltonian memory under both strategies (Fig. 9a).
struct HamiltonianMemory {
  std::size_t existing_bytes_per_rank = 0;          ///< global CSR, same on all
  std::vector<std::size_t> proposed_bytes_per_rank; ///< local dense blocks
  [[nodiscard]] std::size_t proposed_min() const;
  [[nodiscard]] std::size_t proposed_max() const;
  [[nodiscard]] double proposed_mean() const;
};

/// Compute both strategies' memory: `assignment` must be the locality
/// mapping for the proposed numbers; the existing number is the global CSR
/// every rank must hold under the legacy mapping. `interaction_cutoff`
/// (typically 2 r_cut) defines which orbital pairs produce nonzeros;
/// `halo_cutoff` (typically r_cut) defines which atoms' orbitals reach a
/// rank's grid points and hence belong in its local dense block.
HamiltonianMemory hamiltonian_memory(const grid::Structure& structure,
                                     const std::vector<std::size_t>& nb_per_atom,
                                     double interaction_cutoff, double halo_cutoff,
                                     const Assignment& assignment,
                                     const std::vector<grid::Batch>& batches);

/// Cubic splines performed per rank in the Rho phase: (l_max+1)^2 spline
/// channels for every atom whose grid points the rank owns (Fig. 9c).
std::vector<std::size_t> splines_per_rank(const Assignment& assignment,
                                          const std::vector<grid::Batch>& batches,
                                          int poisson_l_max);

/// The ACTUAL global sparse Hamiltonian a rank holds under the legacy
/// mapping -- real row_ptr/col_idx/values arrays, not the analytic byte
/// count of SparsityStats -- with its allocation registered under the
/// memory-audit gauge "mapping/global_csr". This is what lets the fig09a
/// memory bench report instrumented bytes instead of hand-counted
/// estimates. The scope releases the gauge when the struct dies.
struct GlobalCsr {
  std::vector<std::size_t> row_ptr;    ///< size n_basis + 1
  std::vector<std::uint32_t> col_idx;  ///< size nnz
  std::vector<double> values;          ///< size nnz, zero-initialized
  obs::MemScope mem;

  [[nodiscard]] std::size_t bytes() const {
    return row_ptr.capacity() * sizeof(std::size_t) +
           col_idx.capacity() * sizeof(std::uint32_t) +
           values.capacity() * sizeof(double);
  }
};

/// Build the CSR pattern with the same cell-list neighbour search the
/// analytic path uses; bytes() matches SparsityStats::csr_bytes for exact
/// vector sizing.
GlobalCsr materialize_global_csr(const grid::Structure& structure,
                                 const std::vector<std::size_t>& nb_per_atom,
                                 double interaction_cutoff);

/// The ACTUAL dense local Hamiltonian block of `rank` under the proposed
/// locality mapping (local atoms + interacting halo), registered under
/// "mapping/local_block".
struct LocalBlock {
  linalg::Matrix block;  ///< local_nb x local_nb
  obs::MemScope mem;
};

LocalBlock materialize_local_block(const grid::Structure& structure,
                                   const std::vector<std::size_t>& nb_per_atom,
                                   double halo_cutoff,
                                   const Assignment& assignment,
                                   const std::vector<grid::Batch>& batches,
                                   std::size_t rank);

}  // namespace aeqp::mapping
