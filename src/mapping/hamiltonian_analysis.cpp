#include "mapping/hamiltonian_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/error.hpp"

namespace aeqp::mapping {
namespace {

/// Cell-list over atom positions for O(N) fixed-radius neighbour queries.
class CellList {
public:
  CellList(const grid::Structure& s, double cutoff) : s_(s), cutoff_(cutoff) {
    AEQP_CHECK(cutoff > 0.0, "CellList: cutoff must be positive");
    s.bounding_box(lo_, hi_);
    for (int d = 0; d < 3; ++d)
      dims_[d] = std::max<std::int64_t>(
          1, static_cast<std::int64_t>((hi_[d] - lo_[d]) / cutoff) + 1);
    for (std::size_t i = 0; i < s.size(); ++i)
      cells_[key_of(s.atom(i).pos)].push_back(static_cast<std::uint32_t>(i));
  }

  /// Visit all atoms within the cutoff of atom i (including i itself).
  template <typename Fn>
  void for_neighbors(std::size_t i, Fn&& fn) const {
    const Vec3 p = s_.atom(i).pos;
    const auto [cx, cy, cz] = coords_of(p);
    for (std::int64_t x = cx - 1; x <= cx + 1; ++x)
      for (std::int64_t y = cy - 1; y <= cy + 1; ++y)
        for (std::int64_t z = cz - 1; z <= cz + 1; ++z) {
          const auto it = cells_.find(pack(x, y, z));
          if (it == cells_.end()) continue;
          for (std::uint32_t j : it->second)
            if (distance(p, s_.atom(j).pos) <= cutoff_) fn(j);
        }
  }

private:
  [[nodiscard]] std::tuple<std::int64_t, std::int64_t, std::int64_t> coords_of(
      const Vec3& p) const {
    auto idx = [&](double v, int d) {
      return std::clamp<std::int64_t>(
          static_cast<std::int64_t>((v - lo_[d]) / cutoff_), 0, dims_[d] - 1);
    };
    return {idx(p.x, 0), idx(p.y, 1), idx(p.z, 2)};
  }
  [[nodiscard]] std::int64_t pack(std::int64_t x, std::int64_t y,
                                  std::int64_t z) const {
    // Offset by one and stride by dims+2 so the -1..dims scan range of
    // for_neighbors maps to unique keys (no aliasing across coordinates).
    return ((x + 1) * (dims_[1] + 2) + (y + 1)) * (dims_[2] + 2) + (z + 1);
  }
  [[nodiscard]] std::int64_t key_of(const Vec3& p) const {
    const auto [x, y, z] = coords_of(p);
    return pack(x, y, z);
  }

  const grid::Structure& s_;
  double cutoff_;
  Vec3 lo_{}, hi_{};
  std::int64_t dims_[3] = {1, 1, 1};
  std::unordered_map<std::int64_t, std::vector<std::uint32_t>> cells_;
};

}  // namespace

std::vector<std::size_t> basis_function_counts(const grid::Structure& structure,
                                               basis::BasisTier tier) {
  std::map<int, std::size_t> per_element;
  std::vector<std::size_t> out(structure.size());
  for (std::size_t i = 0; i < structure.size(); ++i) {
    const int z = structure.atom(i).z;
    auto it = per_element.find(z);
    if (it == per_element.end())
      it = per_element
               .emplace(z, basis::ElementBasis::standard(z, tier).function_count())
               .first;
    out[i] = it->second;
  }
  return out;
}

SparsityStats global_hamiltonian_sparsity(const grid::Structure& structure,
                                          const std::vector<std::size_t>& nb_per_atom,
                                          double interaction_cutoff) {
  AEQP_CHECK(nb_per_atom.size() == structure.size(),
             "global_hamiltonian_sparsity: per-atom count mismatch");
  SparsityStats stats;
  for (auto n : nb_per_atom) stats.n_basis += n;

  const CellList cells(structure, interaction_cutoff);
  for (std::size_t i = 0; i < structure.size(); ++i) {
    std::size_t partner_funcs = 0;
    cells.for_neighbors(i, [&](std::uint32_t j) { partner_funcs += nb_per_atom[j]; });
    stats.nnz += nb_per_atom[i] * partner_funcs;
  }
  stats.csr_bytes = stats.nnz * (sizeof(double) + sizeof(std::uint32_t)) +
                    (stats.n_basis + 1) * sizeof(std::size_t);
  stats.dense_bytes = stats.n_basis * stats.n_basis * sizeof(double);
  return stats;
}

std::size_t HamiltonianMemory::proposed_min() const {
  return proposed_bytes_per_rank.empty()
             ? 0
             : *std::min_element(proposed_bytes_per_rank.begin(),
                                 proposed_bytes_per_rank.end());
}

std::size_t HamiltonianMemory::proposed_max() const {
  return proposed_bytes_per_rank.empty()
             ? 0
             : *std::max_element(proposed_bytes_per_rank.begin(),
                                 proposed_bytes_per_rank.end());
}

double HamiltonianMemory::proposed_mean() const {
  if (proposed_bytes_per_rank.empty()) return 0.0;
  double s = 0.0;
  for (auto b : proposed_bytes_per_rank) s += static_cast<double>(b);
  return s / static_cast<double>(proposed_bytes_per_rank.size());
}

HamiltonianMemory hamiltonian_memory(const grid::Structure& structure,
                                     const std::vector<std::size_t>& nb_per_atom,
                                     double interaction_cutoff, double halo_cutoff,
                                     const Assignment& assignment,
                                     const std::vector<grid::Batch>& batches) {
  AEQP_CHECK(nb_per_atom.size() == structure.size(),
             "hamiltonian_memory: per-atom count mismatch");
  HamiltonianMemory mem;
  mem.existing_bytes_per_rank =
      global_hamiltonian_sparsity(structure, nb_per_atom, interaction_cutoff)
          .csr_bytes;

  const CellList cells(structure, halo_cutoff);
  mem.proposed_bytes_per_rank.resize(assignment.rank_count());
  std::vector<char> relevant(structure.size());
  for (std::size_t r = 0; r < assignment.rank_count(); ++r) {
    // Local atoms plus the neighbours their orbitals interact with.
    std::fill(relevant.begin(), relevant.end(), 0);
    for (auto a : assignment.atoms_of_rank(r, batches))
      cells.for_neighbors(a, [&](std::uint32_t j) { relevant[j] = 1; });
    std::size_t local_nb = 0;
    for (std::size_t i = 0; i < structure.size(); ++i)
      if (relevant[i]) local_nb += nb_per_atom[i];
    mem.proposed_bytes_per_rank[r] = local_nb * local_nb * sizeof(double);
  }
  return mem;
}

GlobalCsr materialize_global_csr(const grid::Structure& structure,
                                 const std::vector<std::size_t>& nb_per_atom,
                                 double interaction_cutoff) {
  AEQP_CHECK(nb_per_atom.size() == structure.size(),
             "materialize_global_csr: per-atom count mismatch");
  const SparsityStats stats =
      global_hamiltonian_sparsity(structure, nb_per_atom, interaction_cutoff);

  // Function-index ranges per atom.
  std::vector<std::size_t> first(structure.size() + 1, 0);
  for (std::size_t i = 0; i < structure.size(); ++i)
    first[i + 1] = first[i] + nb_per_atom[i];

  GlobalCsr csr;
  csr.mem = obs::MemScope("mapping/global_csr");
  csr.row_ptr.reserve(stats.n_basis + 1);
  csr.col_idx.reserve(stats.nnz);
  csr.values.reserve(stats.nnz);

  const CellList cells(structure, interaction_cutoff);
  std::vector<std::uint32_t> partners;
  csr.row_ptr.push_back(0);
  for (std::size_t i = 0; i < structure.size(); ++i) {
    partners.clear();
    cells.for_neighbors(i, [&](std::uint32_t j) { partners.push_back(j); });
    std::sort(partners.begin(), partners.end());
    // Every row of atom i has the same column pattern: all functions of
    // its interacting partners.
    std::vector<std::uint32_t> cols;
    for (const std::uint32_t j : partners)
      for (std::size_t f = first[j]; f < first[j + 1]; ++f)
        cols.push_back(static_cast<std::uint32_t>(f));
    for (std::size_t row = first[i]; row < first[i + 1]; ++row) {
      csr.col_idx.insert(csr.col_idx.end(), cols.begin(), cols.end());
      csr.values.insert(csr.values.end(), cols.size(), 0.0);
      csr.row_ptr.push_back(csr.col_idx.size());
    }
  }
  csr.mem.add(static_cast<std::int64_t>(csr.bytes()));
  return csr;
}

LocalBlock materialize_local_block(const grid::Structure& structure,
                                   const std::vector<std::size_t>& nb_per_atom,
                                   double halo_cutoff,
                                   const Assignment& assignment,
                                   const std::vector<grid::Batch>& batches,
                                   std::size_t rank) {
  AEQP_CHECK(nb_per_atom.size() == structure.size(),
             "materialize_local_block: per-atom count mismatch");
  AEQP_CHECK(rank < assignment.rank_count(),
             "materialize_local_block: rank out of range");
  const CellList cells(structure, halo_cutoff);
  std::vector<char> relevant(structure.size(), 0);
  for (auto a : assignment.atoms_of_rank(rank, batches))
    cells.for_neighbors(a, [&](std::uint32_t j) { relevant[j] = 1; });
  std::size_t local_nb = 0;
  for (std::size_t i = 0; i < structure.size(); ++i)
    if (relevant[i]) local_nb += nb_per_atom[i];

  LocalBlock out;
  out.mem = obs::MemScope("mapping/local_block");
  out.block = linalg::Matrix(local_nb, local_nb);
  out.mem.add(
      static_cast<std::int64_t>(local_nb * local_nb * sizeof(double)));
  return out;
}

std::vector<std::size_t> splines_per_rank(const Assignment& assignment,
                                          const std::vector<grid::Batch>& batches,
                                          int poisson_l_max) {
  const std::size_t nlm =
      static_cast<std::size_t>((poisson_l_max + 1) * (poisson_l_max + 1));
  std::vector<std::size_t> out(assignment.rank_count());
  for (std::size_t r = 0; r < assignment.rank_count(); ++r)
    out[r] = assignment.atoms_of_rank(r, batches).size() * nlm;
  return out;
}

}  // namespace aeqp::mapping
