#include "mapping/task_mapping.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "common/error.hpp"

namespace aeqp::mapping {

std::size_t Assignment::points_of_rank(std::size_t r,
                                       const std::vector<grid::Batch>& batches) const {
  std::size_t n = 0;
  for (auto b : batches_of_rank[r]) n += batches[b].size();
  return n;
}

std::vector<std::uint32_t> Assignment::atoms_of_rank(
    std::size_t r, const std::vector<grid::Batch>& batches) const {
  std::vector<std::uint32_t> atoms;
  for (auto b : batches_of_rank[r])
    atoms.insert(atoms.end(), batches[b].atoms.begin(), batches[b].atoms.end());
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  return atoms;
}

Assignment least_loaded_mapping(const std::vector<grid::Batch>& batches,
                                std::size_t n_ranks) {
  AEQP_CHECK(n_ranks >= 1, "least_loaded_mapping: need at least one rank");
  Assignment a;
  a.batches_of_rank.resize(n_ranks);
  // Min-heap keyed on current point load; ties by rank id for determinism.
  using Entry = std::pair<std::size_t, std::size_t>;  // (points, rank)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t r = 0; r < n_ranks; ++r) heap.emplace(0, r);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    auto [pts, r] = heap.top();
    heap.pop();
    a.batches_of_rank[r].push_back(static_cast<std::uint32_t>(b));
    heap.emplace(pts + batches[b].size(), r);
  }
  return a;
}

RemapResult remap_for_survivors(const Assignment& previous,
                                const std::vector<grid::Batch>& batches,
                                const std::vector<std::size_t>& survivors) {
  const std::size_t n_prev = previous.rank_count();
  AEQP_CHECK(!survivors.empty(), "remap_for_survivors: no surviving rank");
  AEQP_CHECK(survivors.size() <= n_prev,
             "remap_for_survivors: more survivors than previous ranks");
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    AEQP_CHECK(survivors[s] < n_prev,
               "remap_for_survivors: survivor id out of range");
    AEQP_CHECK(s == 0 || survivors[s - 1] < survivors[s],
               "remap_for_survivors: survivors must be strictly increasing");
  }

  RemapResult out;
  out.assignment.batches_of_rank.resize(survivors.size());

  // Survivors keep their batches; track their load and mean centroid.
  std::vector<bool> surviving(n_prev, false);
  std::vector<std::size_t> points(survivors.size(), 0);
  std::vector<Vec3> centroid_sum(survivors.size(), Vec3{});
  std::vector<std::size_t> owned(survivors.size(), 0);
  std::size_t total_points = 0;
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    surviving[survivors[s]] = true;
    out.assignment.batches_of_rank[s] = previous.batches_of_rank[survivors[s]];
    for (const auto b : out.assignment.batches_of_rank[s]) {
      points[s] += batches[b].size();
      centroid_sum[s] += batches[b].centroid;
      ++owned[s];
    }
    total_points += points[s];
  }

  // Orphans of the dead ranks, placed largest first (the classic bin-
  // packing order) with deterministic id tie-breaks.
  std::vector<std::uint32_t> orphans;
  for (std::size_t r = 0; r < n_prev; ++r) {
    if (surviving[r]) continue;
    orphans.insert(orphans.end(), previous.batches_of_rank[r].begin(),
                   previous.batches_of_rank[r].end());
  }
  for (const auto b : orphans) total_points += batches[b].size();
  std::sort(orphans.begin(), orphans.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (batches[a].size() != batches[b].size())
                return batches[a].size() > batches[b].size();
              return a < b;
            });

  const double mean_points = static_cast<double>(total_points) /
                             static_cast<double>(survivors.size());
  for (const auto b : orphans) {
    std::size_t best = 0;
    double best_score = 0.0;
    for (std::size_t s = 0; s < survivors.size(); ++s) {
      // Locality term: distance to the survivor's current mean centroid
      // (a survivor with no batches yet attracts work from anywhere).
      double dist = 0.0;
      if (owned[s] > 0) {
        const Vec3 mean = centroid_sum[s] / static_cast<double>(owned[s]);
        dist = (batches[b].centroid - mean).norm();
      }
      // Balance term: relative load after accepting the batch.
      const double load =
          static_cast<double>(points[s] + batches[b].size()) /
          std::max(mean_points, 1.0);
      const double score = (1.0 + dist) * load;
      if (s == 0 || score < best_score) {
        best = s;
        best_score = score;
      }
    }
    out.assignment.batches_of_rank[best].push_back(b);
    points[best] += batches[b].size();
    centroid_sum[best] += batches[b].centroid;
    ++owned[best];
    ++out.moved_batches;
    out.moved_points += batches[b].size();
  }
  return out;
}

RemapResult rebalance_for_slow_ranks(const Assignment& previous,
                                     const std::vector<grid::Batch>& batches,
                                     const std::vector<double>& weights) {
  const std::size_t n_ranks = previous.rank_count();
  AEQP_CHECK(n_ranks >= 1, "rebalance_for_slow_ranks: empty assignment");
  AEQP_CHECK(weights.size() == n_ranks,
             "rebalance_for_slow_ranks: weight count " +
                 std::to_string(weights.size()) + " != rank count " +
                 std::to_string(n_ranks));
  double weight_sum = 0.0;
  for (const double w : weights) {
    AEQP_CHECK(w > 0.0, "rebalance_for_slow_ranks: weights must be > 0");
    weight_sum += w;
  }

  RemapResult out;
  out.assignment.batches_of_rank.resize(n_ranks);

  std::vector<std::size_t> points(n_ranks, 0);
  std::vector<Vec3> centroid_sum(n_ranks, Vec3{});
  std::vector<std::size_t> owned(n_ranks, 0);
  std::size_t total_points = 0;
  for (std::size_t r = 0; r < n_ranks; ++r) {
    out.assignment.batches_of_rank[r] = previous.batches_of_rank[r];
    for (const auto b : out.assignment.batches_of_rank[r]) {
      points[r] += batches[b].size();
      centroid_sum[r] += batches[b].centroid;
      ++owned[r];
    }
    total_points += points[r];
  }

  // Per-rank point target proportional to measured speed; a floor of one
  // point keeps the balance term below finite.
  std::vector<double> target(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r)
    target[r] = std::max(static_cast<double>(total_points) * weights[r] /
                             weight_sum,
                         1.0);

  // Overloaded ranks shed batches farthest from their own mean centroid
  // first: the spatial core that makes their caches and splines valuable
  // stays put, the fringe moves.
  std::vector<std::uint32_t> orphans;
  for (std::size_t r = 0; r < n_ranks; ++r) {
    if (static_cast<double>(points[r]) <= target[r] || owned[r] == 0) continue;
    auto& ids = out.assignment.batches_of_rank[r];
    const Vec3 mean = centroid_sum[r] / static_cast<double>(owned[r]);
    std::sort(ids.begin(), ids.end(), [&](std::uint32_t a, std::uint32_t b) {
      const double da = (batches[a].centroid - mean).norm2();
      const double db = (batches[b].centroid - mean).norm2();
      if (da != db) return da < db;
      return a < b;
    });
    // Pop from the far end until the target is met (keep at least one
    // batch so the rank still participates in every distributed phase).
    while (ids.size() > 1 &&
           static_cast<double>(points[r]) > target[r]) {
      const std::uint32_t b = ids.back();
      ids.pop_back();
      points[r] -= batches[b].size();
      centroid_sum[r] -= batches[b].centroid;
      --owned[r];
      orphans.push_back(b);
    }
  }

  std::sort(orphans.begin(), orphans.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (batches[a].size() != batches[b].size())
                return batches[a].size() > batches[b].size();
              return a < b;
            });

  for (const auto b : orphans) {
    std::size_t best = 0;
    double best_score = 0.0;
    bool found = false;
    for (std::size_t r = 0; r < n_ranks; ++r) {
      double dist = 0.0;
      if (owned[r] > 0) {
        const Vec3 mean = centroid_sum[r] / static_cast<double>(owned[r]);
        dist = (batches[b].centroid - mean).norm();
      }
      // Balance term against the *weighted* target: a slow rank's small
      // target repels work exactly in proportion to its measured speed.
      const double load =
          static_cast<double>(points[r] + batches[b].size()) / target[r];
      const double score = (1.0 + dist) * load;
      if (!found || score < best_score) {
        best = r;
        best_score = score;
        found = true;
      }
    }
    out.assignment.batches_of_rank[best].push_back(b);
    points[best] += batches[b].size();
    centroid_sum[best] += batches[b].centroid;
    ++owned[best];
    ++out.moved_batches;
    out.moved_points += batches[b].size();
  }

  // Batch order within a rank feeds downstream loops; keep it sorted so the
  // result is independent of shedding/placement order.
  for (auto& ids : out.assignment.batches_of_rank)
    std::sort(ids.begin(), ids.end());
  return out;
}

namespace {

/// One round of the bisection of paper Fig. 5 / Algorithm 1 lines 5-13.
void bisect_ranks(const std::vector<grid::Batch>& batches,
                  std::vector<std::uint32_t>& ids, std::size_t id_begin,
                  std::size_t id_end, std::size_t rank_begin, std::size_t rank_end,
                  Assignment& out) {
  const std::size_t n_ranks = rank_end - rank_begin;
  if (n_ranks == 1) {  // Algorithm 1 line 2-3: map the whole set
    auto& dest = out.batches_of_rank[rank_begin];
    dest.assign(ids.begin() + static_cast<std::ptrdiff_t>(id_begin),
                ids.begin() + static_cast<std::ptrdiff_t>(id_end));
    return;
  }

  // Line 7: dimension with the largest centroid spread.
  Vec3 lo = batches[ids[id_begin]].centroid, hi = lo;
  for (std::size_t k = id_begin + 1; k < id_end; ++k) {
    const Vec3& c = batches[ids[k]].centroid;
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], c[d]);
      hi[d] = std::max(hi[d], c[d]);
    }
  }
  int dim = 0;
  double best = hi[0] - lo[0];
  for (int d = 1; d < 3; ++d)
    if (hi[d] - lo[d] > best) {
      best = hi[d] - lo[d];
      dim = d;
    }

  // Line 8: sort the batch projections along dim.
  std::sort(ids.begin() + static_cast<std::ptrdiff_t>(id_begin),
            ids.begin() + static_cast<std::ptrdiff_t>(id_end),
            [&](std::uint32_t a, std::uint32_t b) {
              return batches[a].centroid[dim] < batches[b].centroid[dim];
            });

  // Lines 9-11: split where the cumulative point count crosses half, scaled
  // by the uneven process split ceil(n/2) : floor(n/2).
  const std::size_t ranks_left = (n_ranks + 1) / 2;
  std::size_t total_points = 0;
  for (std::size_t k = id_begin; k < id_end; ++k)
    total_points += batches[ids[k]].size();
  const double pivot = static_cast<double>(total_points) *
                       static_cast<double>(ranks_left) /
                       static_cast<double>(n_ranks);

  std::size_t split = id_begin;
  std::size_t acc = 0;
  while (split < id_end) {
    const std::size_t next = acc + batches[ids[split]].size();
    if (static_cast<double>(next) > pivot) break;
    acc = next;
    ++split;
  }
  // Both halves must stay non-empty so every rank receives work.
  split = std::clamp(split, id_begin + 1, id_end - 1);
  // Never split fewer batches than processes on either side.
  split = std::clamp(split, id_begin + ranks_left,
                     id_end - (n_ranks - ranks_left));

  bisect_ranks(batches, ids, id_begin, split, rank_begin, rank_begin + ranks_left,
               out);
  bisect_ranks(batches, ids, split, id_end, rank_begin + ranks_left, rank_end, out);
}

}  // namespace

Assignment locality_enhancing_mapping(const std::vector<grid::Batch>& batches,
                                      std::size_t n_ranks) {
  AEQP_CHECK(n_ranks >= 1, "locality_enhancing_mapping: need at least one rank");
  AEQP_CHECK(batches.size() >= n_ranks,
             "locality_enhancing_mapping: need at least one batch per rank");
  Assignment a;
  a.batches_of_rank.resize(n_ranks);
  std::vector<std::uint32_t> ids(batches.size());
  std::iota(ids.begin(), ids.end(), 0u);
  bisect_ranks(batches, ids, 0, ids.size(), 0, n_ranks, a);
  return a;
}

double load_imbalance(const Assignment& a, const std::vector<grid::Batch>& batches) {
  std::size_t total = 0, max_pts = 0;
  for (std::size_t r = 0; r < a.rank_count(); ++r) {
    const std::size_t pts = a.points_of_rank(r, batches);
    total += pts;
    max_pts = std::max(max_pts, pts);
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(a.rank_count());
  return mean > 0.0 ? static_cast<double>(max_pts) / mean : 0.0;
}

obs::MemScope track_assignment(const Assignment& a) {
  obs::MemScope scope("mapping/assignment");
  std::int64_t bytes =
      static_cast<std::int64_t>(a.batches_of_rank.capacity() *
                                sizeof(std::vector<std::uint32_t>));
  for (const auto& ids : a.batches_of_rank)
    bytes += static_cast<std::int64_t>(ids.capacity() * sizeof(std::uint32_t));
  scope.add(bytes);
  return scope;
}

double mean_rank_spread(const Assignment& a, const std::vector<grid::Batch>& batches) {
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t r = 0; r < a.rank_count(); ++r) {
    const auto& ids = a.batches_of_rank[r];
    if (ids.empty()) continue;
    Vec3 mean{};
    for (auto b : ids) mean += batches[b].centroid;
    mean = mean / static_cast<double>(ids.size());
    double rms = 0.0;
    for (auto b : ids) rms += (batches[b].centroid - mean).norm2();
    sum += std::sqrt(rms / static_cast<double>(ids.size()));
    ++counted;
  }
  return counted ? sum / static_cast<double>(counted) : 0.0;
}

}  // namespace aeqp::mapping
