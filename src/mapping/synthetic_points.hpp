#pragma once

/// \file synthetic_points.hpp
/// Cheap stand-in grids for mapping experiments at large atom counts:
/// instead of building the full weighted integration grid (what SCF needs),
/// emit a fixed number of points per atom with the right spatial statistics
/// (non-uniform radial shells). Positions and parent atoms are all the
/// task-mapping strategies and memory models consume.

#include <cstdint>
#include <vector>

#include "common/vec3.hpp"
#include "grid/structure.hpp"

namespace aeqp::mapping {

/// Point cloud with parent-atom labels, compatible with grid::make_batches.
struct PointCloud {
  std::vector<Vec3> positions;
  std::vector<std::uint32_t> parent_atom;
};

/// Generate `points_per_atom` points around every atom with a radial
/// distribution mimicking the logarithmic shells (dense near nuclei).
PointCloud synthetic_point_cloud(const grid::Structure& structure,
                                 std::size_t points_per_atom,
                                 std::uint64_t seed = 1234,
                                 double max_radius = 4.0);

}  // namespace aeqp::mapping
