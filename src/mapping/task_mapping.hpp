#pragma once

/// \file task_mapping.hpp
/// Batch-to-process task mapping strategies (paper Sec. 3.1).
///
/// - least_loaded_mapping: the legacy load-balancing strategy of FHI-aims
///   [ref 6]: each batch goes to the process currently owning the fewest
///   grid points, ignoring which atoms the batch touches. Balanced, but an
///   atom's grid points scatter across many processes (Fig. 3a).
/// - locality_enhancing_mapping: the paper's Algorithm 1: recursive
///   bisection of batches by spatial projection, splitting the process set
///   and the (point-weighted) batch set in half each round, so neighbouring
///   atoms land on the same process (Fig. 3b).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/batch.hpp"

namespace aeqp::mapping {

/// batches_of_rank[r] lists batch indices assigned to rank r.
struct Assignment {
  std::vector<std::vector<std::uint32_t>> batches_of_rank;

  [[nodiscard]] std::size_t rank_count() const { return batches_of_rank.size(); }

  /// Total grid points of rank r.
  [[nodiscard]] std::size_t points_of_rank(
      std::size_t r, const std::vector<grid::Batch>& batches) const;

  /// Sorted unique atoms whose grid points rank r owns.
  [[nodiscard]] std::vector<std::uint32_t> atoms_of_rank(
      std::size_t r, const std::vector<grid::Batch>& batches) const;
};

/// Legacy strategy: greedy least-loaded assignment in batch order.
Assignment least_loaded_mapping(const std::vector<grid::Batch>& batches,
                                std::size_t n_ranks);

/// Paper Algorithm 1: locality-enhancing recursive bisection.
Assignment locality_enhancing_mapping(const std::vector<grid::Batch>& batches,
                                      std::size_t n_ranks);

/// Load imbalance: max points per rank / mean points per rank.
double load_imbalance(const Assignment& a, const std::vector<grid::Batch>& batches);

/// Mean spatial spread (RMS distance of batch centroids to their rank's
/// mean centroid), the locality metric Algorithm 1 minimizes.
double mean_rank_spread(const Assignment& a, const std::vector<grid::Batch>& batches);

}  // namespace aeqp::mapping
