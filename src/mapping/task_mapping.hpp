#pragma once

/// \file task_mapping.hpp
/// Batch-to-process task mapping strategies (paper Sec. 3.1).
///
/// - least_loaded_mapping: the legacy load-balancing strategy of FHI-aims
///   [ref 6]: each batch goes to the process currently owning the fewest
///   grid points, ignoring which atoms the batch touches. Balanced, but an
///   atom's grid points scatter across many processes (Fig. 3a).
/// - locality_enhancing_mapping: the paper's Algorithm 1: recursive
///   bisection of batches by spatial projection, splitting the process set
///   and the (point-weighted) batch set in half each round, so neighbouring
///   atoms land on the same process (Fig. 3b).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/batch.hpp"
#include "obs/memaudit.hpp"

namespace aeqp::mapping {

/// batches_of_rank[r] lists batch indices assigned to rank r.
struct Assignment {
  std::vector<std::vector<std::uint32_t>> batches_of_rank;

  [[nodiscard]] std::size_t rank_count() const { return batches_of_rank.size(); }

  /// Total grid points of rank r.
  [[nodiscard]] std::size_t points_of_rank(
      std::size_t r, const std::vector<grid::Batch>& batches) const;

  /// Sorted unique atoms whose grid points rank r owns.
  [[nodiscard]] std::vector<std::uint32_t> atoms_of_rank(
      std::size_t r, const std::vector<grid::Batch>& batches) const;
};

/// Legacy strategy: greedy least-loaded assignment in batch order.
Assignment least_loaded_mapping(const std::vector<grid::Batch>& batches,
                                std::size_t n_ranks);

/// Register the real container bytes of `a` under the memory-audit gauge
/// "mapping/assignment" (ROADMAP item 3: the batch-to-rank tables are
/// per-rank state growing with global N). The returned scope owns the
/// registration and releases it on destruction; keep it alive exactly as
/// long as the assignment. One relaxed atomic load when the audit is off.
[[nodiscard]] obs::MemScope track_assignment(const Assignment& a);

/// Outcome of an elastic re-mapping: the survivor assignment (densely
/// renumbered: slot s of the result is survivors[s] of the previous
/// assignment) plus what had to move.
struct RemapResult {
  Assignment assignment;
  std::size_t moved_batches = 0;  ///< orphaned batches re-homed
  std::size_t moved_points = 0;   ///< grid points those batches carry
};

/// Locality-aware re-mapping after permanent rank loss (elastic recovery).
/// Survivors keep the batches they already own -- their caches, splines and
/// basis evaluations stay valid -- and each orphaned batch of a dead rank
/// is re-homed to the survivor minimizing the same locality-vs-balance
/// objective Algorithm 1 optimizes: distance from the batch centroid to the
/// survivor's mean centroid, scaled by the survivor's relative point load.
/// Orphans are placed largest-first and the survivor centroid/load are
/// updated incrementally, so the result is deterministic. `survivors` lists
/// surviving rank ids of `previous` in strictly increasing order.
RemapResult remap_for_survivors(const Assignment& previous,
                                const std::vector<grid::Batch>& batches,
                                const std::vector<std::size_t>& survivors);

/// Weighted re-mapping around measured rank speeds (the recovery ladder's
/// rebalance rung, fired for stragglers *before* any shrink). Every rank
/// stays in the world -- no renumbering, rank_count is preserved and the
/// result is safe to use under the same Cluster -- but each rank r is
/// targeted at total_points * weights[r] / sum(weights): a rank measured 8x
/// slow (weight 1/8) keeps ~1/8 of a fair share. Overloaded ranks shed
/// their farthest-from-centroid batches first (their locality core stays
/// intact), and the orphans are re-homed with the same locality-vs-balance
/// objective remap_for_survivors uses, with the balance term measured
/// against the weighted target. Deterministic: results depend only on the
/// inputs, so every rank computing its own copy agrees bit-for-bit.
/// `weights` has previous.rank_count() entries, each > 0.
RemapResult rebalance_for_slow_ranks(const Assignment& previous,
                                     const std::vector<grid::Batch>& batches,
                                     const std::vector<double>& weights);

/// Paper Algorithm 1: locality-enhancing recursive bisection.
Assignment locality_enhancing_mapping(const std::vector<grid::Batch>& batches,
                                      std::size_t n_ranks);

/// Load imbalance: max points per rank / mean points per rank.
double load_imbalance(const Assignment& a, const std::vector<grid::Batch>& batches);

/// Mean spatial spread (RMS distance of batch centroids to their rank's
/// mean centroid), the locality metric Algorithm 1 minimizes.
double mean_rank_spread(const Assignment& a, const std::vector<grid::Batch>& batches);

}  // namespace aeqp::mapping
