#pragma once

/// \file aeqp.hpp
/// Umbrella header: the whole public API of the AEQP library.
///
/// Typical usage pulls three layers:
///   - problem setup: grid::Structure (or core::from_xyz / core:: generators)
///   - ground state: scf::ScfSolver
///   - response: core::DfptSolver (serial) or core::solve_direction_parallel
///     (distributed on the simulated cluster)
/// plus the substrate APIs (parallel::, comm::, mapping::, simt::,
/// perfmodel::) for the scaling and portability experiments, and the
/// resilience:: layer (fault injection, checkpoint/restart, recovery) for
/// the fault-tolerance ones.

#include "basis/basis_set.hpp"
#include "basis/element.hpp"
#include "basis/radial_function.hpp"
#include "basis/spherical_harmonics.hpp"
#include "basis/spline.hpp"
#include "comm/hierarchical.hpp"
#include "comm/packed.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_ident.hpp"
#include "common/timer.hpp"
#include "common/vec3.hpp"
#include "core/cube.hpp"
#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "core/polarizability_invariants.hpp"
#include "core/relax.hpp"
#include "core/spectrum.hpp"
#include "core/structures.hpp"
#include "core/vibrations.hpp"
#include "core/xyz.hpp"
#include "exec/thread_pool.hpp"
#include "grid/angular_grid.hpp"
#include "grid/batch.hpp"
#include "grid/molecular_grid.hpp"
#include "grid/partition.hpp"
#include "grid/quadrature.hpp"
#include "grid/radial_grid.hpp"
#include "grid/structure.hpp"
#include "kernels/batch_kernels.hpp"
#include "kernels/density_kernels.hpp"
#include "kernels/hartree_pm_kernel.hpp"
#include "kernels/init_kernel.hpp"
#include "kernels/rho_kernels.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "mapping/hamiltonian_analysis.hpp"
#include "mapping/synthetic_points.hpp"
#include "mapping/task_mapping.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "parallel/cluster.hpp"
#include "parallel/fault.hpp"
#include "parallel/machine_model.hpp"
#include "perfmodel/dfpt_perf_model.hpp"
#include "poisson/adams_moulton.hpp"
#include "poisson/multipole.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/health.hpp"
#include "resilience/recovery.hpp"
#include "scf/diis.hpp"
#include "scf/integrator.hpp"
#include "scf/occupations.hpp"
#include "scf/scf_solver.hpp"
#include "simt/device.hpp"
#include "simt/runtime.hpp"
#include "xc/lda.hpp"
