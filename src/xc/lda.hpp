#pragma once

/// \file lda.hpp
/// Local density approximation exchange-correlation: Slater exchange plus
/// Perdew-Zunger (1981) correlation, the functional used in the paper's
/// evaluation ("all calculations use light settings and the LDA
/// functional"). Besides the potential v_xc, DFPT needs the response
/// kernel f_xc = dv_xc/dn of paper Eq. (12).

namespace aeqp::xc {

/// Pointwise LDA quantities at density n (spin-unpolarized).
struct LdaPoint {
  double exc = 0.0;  ///< exchange-correlation energy density per electron
  double vxc = 0.0;  ///< exchange-correlation potential
  double fxc = 0.0;  ///< dv_xc/dn, the DFPT kernel of Eq. (12)
};

/// Evaluate exchange+correlation at density n (clamped at a tiny floor).
LdaPoint lda_evaluate(double n);

/// Slater exchange energy per electron: -(3/4)(3/pi)^(1/3) n^(1/3).
double slater_exchange_energy(double n);

/// Slater exchange potential: (4/3) * energy density per electron.
double slater_exchange_potential(double n);

/// PZ81 correlation energy per electron.
double pz81_correlation_energy(double n);

/// PZ81 correlation potential.
double pz81_correlation_potential(double n);

}  // namespace aeqp::xc
