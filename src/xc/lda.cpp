#include "xc/lda.hpp"

#include <cmath>

#include "common/constants.hpp"

namespace aeqp::xc {
namespace {

constexpr double kDensityFloor = 1e-14;

// PZ81 parameters, unpolarized.
constexpr double kGamma = -0.1423, kBeta1 = 1.0529, kBeta2 = 0.3334;
constexpr double kA = 0.0311, kB = -0.048, kC = 0.0020, kD = -0.0116;

double rs_of(double n) {
  return std::cbrt(3.0 / (constants::four_pi * n));
}

double ec_of_rs(double rs) {
  if (rs < 1.0)
    return kA * std::log(rs) + kB + kC * rs * std::log(rs) + kD * rs;
  const double srs = std::sqrt(rs);
  return kGamma / (1.0 + kBeta1 * srs + kBeta2 * rs);
}

double vc_of_rs(double rs) {
  if (rs < 1.0) {
    // v_c = e_c - (rs/3) de_c/drs.
    const double dec = kA / rs + kC * (std::log(rs) + 1.0) + kD;
    return ec_of_rs(rs) - rs / 3.0 * dec;
  }
  const double srs = std::sqrt(rs);
  const double denom = 1.0 + kBeta1 * srs + kBeta2 * rs;
  return kGamma * (1.0 + 7.0 / 6.0 * kBeta1 * srs + 4.0 / 3.0 * kBeta2 * rs) /
         (denom * denom);
}

}  // namespace

double slater_exchange_energy(double n) {
  if (n < kDensityFloor) return 0.0;
  return -0.75 * std::cbrt(3.0 / constants::pi) * std::cbrt(n);
}

double slater_exchange_potential(double n) {
  if (n < kDensityFloor) return 0.0;
  return -std::cbrt(3.0 / constants::pi) * std::cbrt(n);
}

double pz81_correlation_energy(double n) {
  if (n < kDensityFloor) return 0.0;
  return ec_of_rs(rs_of(n));
}

double pz81_correlation_potential(double n) {
  if (n < kDensityFloor) return 0.0;
  return vc_of_rs(rs_of(n));
}

LdaPoint lda_evaluate(double n) {
  LdaPoint out;
  if (n < kDensityFloor) return out;
  out.exc = slater_exchange_energy(n) + pz81_correlation_energy(n);
  out.vxc = slater_exchange_potential(n) + pz81_correlation_potential(n);

  // Kernel f_xc = dv_xc/dn. Exchange analytically; correlation by a
  // centered relative finite difference (robust across the rs = 1 branch).
  const double fx = -std::cbrt(3.0 / constants::pi) / (3.0 * std::pow(n, 2.0 / 3.0));
  const double h = 1e-4 * n;
  const double fc =
      (pz81_correlation_potential(n + h) - pz81_correlation_potential(n - h)) /
      (2.0 * h);
  out.fxc = fx + fc;
  return out;
}

}  // namespace aeqp::xc
