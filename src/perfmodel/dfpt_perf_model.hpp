#pragma once

/// \file dfpt_perf_model.hpp
/// End-to-end performance composition for the scaling figures (paper
/// Figs. 14-16): per-cycle DFPT phase times for N atoms on P ranks of one
/// of the two modeled machines.
///
/// The model is calibrated, not free-floating: the per-phase optimization
/// factors (dense-vs-sparse access, kernel fusion, loop collapsing,
/// indirect-access elimination) are obtained by actually executing the
/// kernel variants from src/kernels on the device models and taking their
/// modeled-time ratios, and communication times come from the alpha-beta
/// CommCostModel. Only the raw per-atom work constants are fitted to the
/// paper's absolute scales (Sec. 5.3: response density matrix ~O(N^1.2),
/// response potential ~O(N^1.7) dominating at large N, <1 min/cycle for
/// 200k atoms).

#include <cstddef>

#include "parallel/machine_model.hpp"
#include "simt/device.hpp"

namespace aeqp::perfmodel {

/// Which of the paper's innovations are enabled (the before/after axis of
/// Fig. 14 and the ablation benches).
struct OptimizationFlags {
  bool locality_mapping = true;   ///< Sec. 3.1
  bool packed_comm = true;        ///< Sec. 3.2.1
  bool hierarchical_comm = true;  ///< Sec. 3.2.2 (requires machine SHM)
  bool kernel_fusion = true;      ///< Sec. 4.2
  bool indirect_elimination = true;  ///< Sec. 4.3
  bool loop_collapsing = true;    ///< Sec. 4.4
  /// The pre-optimization OpenCL baseline [38] left the response-density-
  /// matrix phase on the host CPU; the paper's Fig. 14 DM speedups (up to
  /// 36.5x) are dominated by accelerating it.
  bool accelerated_dm = true;

  static OptimizationFlags all_on() { return {}; }
  static OptimizationFlags all_off() {
    return {false, false, false, false, false, false, false};
  }
};

/// Seconds per DFPT cycle, split by phase (Fig. 14's stacked bars).
struct PhaseBreakdown {
  double init = 0.0;   ///< grid-partitioning initialization (amortized)
  double dm = 0.0;     ///< response density matrix P^(1)
  double sumup = 0.0;  ///< response density n^(1)
  double rho = 0.0;    ///< response potential v^(1)
  double h = 0.0;      ///< response Hamiltonian H^(1)
  double comm = 0.0;   ///< collective communication

  [[nodiscard]] double total() const {
    return init + dm + sumup + rho + h + comm;
  }
};

/// Performance model of one machine (CPU cluster + accelerator).
class DfptPerfModel {
public:
  /// `use_accelerator` = false models the HPC#2 "CPU only" series.
  DfptPerfModel(parallel::MachineModel machine, simt::DeviceModel device,
                bool use_accelerator = true);

  /// Per-cycle phase times for `n_atoms` on `ranks` MPI processes.
  [[nodiscard]] PhaseBreakdown predict(std::size_t n_atoms, std::size_t ranks,
                                       const OptimizationFlags& flags) const;

  /// Strong-scaling speedup vs a baseline rank count.
  [[nodiscard]] double strong_speedup(std::size_t n_atoms, std::size_t base_ranks,
                                      std::size_t ranks,
                                      const OptimizationFlags& flags) const;

  /// Weak-scaling parallel efficiency vs a baseline (n0, p0) case.
  [[nodiscard]] double weak_efficiency(std::size_t n0, std::size_t p0,
                                       std::size_t n_atoms, std::size_t ranks,
                                       const OptimizationFlags& flags) const;

  // Calibrated optimization factors (exposed for the ablation benches).
  [[nodiscard]] double dense_access_factor() const { return dense_factor_; }
  [[nodiscard]] double fusion_factor() const { return fusion_factor_; }
  [[nodiscard]] double collapse_factor() const { return collapse_factor_; }
  [[nodiscard]] double indirect_factor() const { return indirect_factor_; }

  [[nodiscard]] const parallel::MachineModel& machine() const { return machine_; }
  [[nodiscard]] const simt::DeviceModel& device() const { return device_; }

private:
  parallel::MachineModel machine_;
  simt::DeviceModel device_;
  bool use_accelerator_;
  parallel::CommCostModel comm_model_;

  // Kernel-calibrated speedup factors (>= 1).
  double dense_factor_ = 1.0;
  double fusion_factor_ = 1.0;
  double collapse_factor_ = 1.0;
  double indirect_factor_ = 1.0;
};

}  // namespace aeqp::perfmodel
