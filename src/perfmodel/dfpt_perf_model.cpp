#include "perfmodel/dfpt_perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "kernels/density_kernels.hpp"
#include "kernels/hartree_pm_kernel.hpp"
#include "kernels/init_kernel.hpp"
#include "kernels/rho_kernels.hpp"
#include "simt/runtime.hpp"

namespace aeqp::perfmodel {
namespace {

// Effective work-unit constants fitted to the paper's absolute scales
// (Sec. 5.3: ~O(N^1.2) response-density-matrix work, ~O(N^1.7) response-
// potential work dominating at large N, sub-minute cycles for 200k atoms on
// the full HPC#2 partition). They bundle flop counts with all constant-
// factor inefficiencies of the real code, hence their magnitudes.
constexpr double kInitWorkPerAtom = 4.4e9;
constexpr double kDmWorkPerAtom12 = 2.3e9;   // x N^1.2
constexpr double kSumupWorkPerAtom = 5.5e10;
constexpr double kRhoWorkPerAtom17 = 8.6e6;  // x N^1.7
constexpr double kHWorkPerAtom = 5.5e10;

// Communication workload shapes.
constexpr std::size_t kRhoMultipoleRowBytes = 16384;  // one atom's row
constexpr std::size_t kPackWindowRows = 512;         // paper Sec. 5.2.2

// Large-message reduces of the response density matrix (the P^(1)
// communication the paper blames for strong-scaling deterioration,
// Sec. 5.3.1): bandwidth-bound per-atom volume with a mild logarithmic
// congestion growth, fitted to the 22.5% -> 39.1% DM time-share series.
constexpr double kDmCommPerAtom = 7.35e-6;  // seconds x atoms at log2(P)=0
constexpr double kDmCommLogGrowth = 2.4;    // x (log2(P)/10)^2

// Work granularity: with N/P atoms per rank, integer batch granularity
// leaves ~kGranularityAtoms/(N/P) relative imbalance in the compute phases.
constexpr double kGranularityAtoms = 0.8;

// Phase-level weight of the matrix-access path inside Sumup/H/DM (the rest
// is basis-function arithmetic), and of the fusible producer/consumer pair
// inside Rho; calibrated so the applied factors land in the ranges the
// paper measures (Fig. 9b: 7.5%-26.4%; Fig. 12b: up to 2.4x).
constexpr double kMatrixAccessShare = 0.02;
constexpr double kMatrixAccessCap = 1.25;
constexpr double kFusionShare = 0.4;

}  // namespace

DfptPerfModel::DfptPerfModel(parallel::MachineModel machine,
                             simt::DeviceModel device, bool use_accelerator)
    : machine_(std::move(machine)),
      device_(std::move(device)),
      use_accelerator_(use_accelerator),
      comm_model_(machine_) {
  // --- Calibrate optimization factors by running the kernel variants. ---
  simt::SimtRuntime rt(device_);

  {  // Dense vs sparse matrix access (Fig. 9b) -> Sumup/H/DM factor.
    const auto w = kernels::DensityKernelWorkload::make(96, 1359, 512, 24);
    const auto dense = kernels::run_sumup_dense(rt, w);
    const auto sparse = kernels::run_sumup_sparse(rt, w);
    const double raw = sparse.stats.modeled_seconds(device_) /
                       dense.stats.modeled_seconds(device_);
    // The access path is a slice of the whole phase; weight and cap to the
    // phase level (Fig. 9b's 7.5-26.4% range).
    dense_factor_ =
        std::min(kMatrixAccessCap, 1.0 + (raw - 1.0) * kMatrixAccessShare);
  }
  {  // Kernel fusion (Fig. 12) -> Rho factor.
    kernels::RhoPhaseConfig cfg;
    cfg.n_atoms = 4;
    cfg.l_max = 3;
    cfg.radial_points = 48;
    cfg.grid_points_per_rank = 512;
    cfg.ranks_per_device = 8;
    const auto unfused = kernels::run_rho_phase(rt, cfg, kernels::FusionMode::Unfused);
    const auto fused = kernels::run_rho_phase(
        rt, cfg,
        device_.has_rma ? kernels::FusionMode::VerticalFused
                        : kernels::FusionMode::HorizontalFused);
    const double raw = unfused.stats.modeled_seconds(device_) /
                       fused.stats.modeled_seconds(device_);
    fusion_factor_ = 1.0 + (std::max(raw, 1.0) - 1.0) * kFusionShare;
  }
  {  // Loop collapsing (Fig. 13) -> Rho factor (SIMT devices only).
    const auto nested = kernels::run_pm_loop_nested(rt, 64, 9);
    const auto collapsed = kernels::run_pm_loop_collapsed(rt, 64, 9);
    collapse_factor_ = nested.stats.modeled_seconds(device_) /
                       collapsed.stats.modeled_seconds(device_);
    if (collapse_factor_ < 1.0) collapse_factor_ = 1.0;
  }
  {  // Indirect-access elimination (Fig. 11) -> Init factor.
    const auto in = kernels::make_init_input(8192, 400000);
    const auto rearranged = kernels::build_rearranged_coords(in);
    simt::SimtRuntime a(device_), b(device_);
    kernels::run_init_kernel_indirect(a, in);
    kernels::run_init_kernel_direct(b, in, rearranged);
    indirect_factor_ = a.modeled_seconds() / b.modeled_seconds();
  }
}

PhaseBreakdown DfptPerfModel::predict(std::size_t n_atoms, std::size_t ranks,
                                      const OptimizationFlags& flags) const {
  AEQP_CHECK(n_atoms >= 1 && ranks >= 1, "predict: empty problem");
  const double n = static_cast<double>(n_atoms);
  const double p = static_cast<double>(ranks);
  const double rate =
      use_accelerator_ ? 1.0 / device_.flop_time : machine_.host_flop_rate;

  // Integer batch granularity stretches the slowest rank.
  const double imbalance = 1.0 + kGranularityAtoms / std::max(1.0, n / p);

  PhaseBreakdown t;
  const double dm_rate = (flags.accelerated_dm && use_accelerator_)
                             ? rate
                             : machine_.host_flop_rate;
  t.init = imbalance * kInitWorkPerAtom * n / p / rate;
  t.dm = imbalance * kDmWorkPerAtom12 * std::pow(n, 1.2) / p / dm_rate;
  t.sumup = imbalance * kSumupWorkPerAtom * n / p / rate;
  t.rho = imbalance * kRhoWorkPerAtom17 * std::pow(n, 1.7) / p / rate;
  t.h = imbalance * kHWorkPerAtom * n / p / rate;

  // Optimization factors multiply the *unoptimized* path.
  if (!flags.indirect_elimination) t.init *= indirect_factor_;
  if (!flags.locality_mapping) {
    // Sparse global Hamiltonian access penalizes density/Hamiltonian work
    // (Fig. 9b) and forfeits the cubic-spline reuse in Rho (Fig. 9c).
    t.sumup *= dense_factor_;
    t.h *= dense_factor_;
    t.dm *= dense_factor_;
    t.rho *= 1.095;  // ~9.5% spline-reuse gain reported on HPC#1
  }
  if (!flags.kernel_fusion) t.rho *= fusion_factor_;
  if (!flags.loop_collapsing && use_accelerator_) t.rho *= collapse_factor_;

  // Communication: the rho_multipole synthesis after Sumup plus the
  // response-density-matrix reduces in DM.
  const std::size_t rows = n_atoms;
  double rho_comm = 0.0;
  if (!flags.packed_comm) {
    rho_comm =
        comm_model_.repeated_allreduce_seconds(kRhoMultipoleRowBytes, rows, ranks);
  } else if (flags.hierarchical_comm && machine_.has_shm) {
    const std::size_t windows = (rows + kPackWindowRows - 1) / kPackWindowRows;
    rho_comm = static_cast<double>(windows) *
               comm_model_
                   .packed_hierarchical_seconds(kRhoMultipoleRowBytes,
                                                kPackWindowRows, ranks)
                   .total();
  } else {
    const std::size_t windows = (rows + kPackWindowRows - 1) / kPackWindowRows;
    rho_comm = static_cast<double>(windows) *
               comm_model_.packed_allreduce_seconds(kRhoMultipoleRowBytes,
                                                    kPackWindowRows, ranks);
  }
  const double lg = ranks > 1 ? std::log2(p) / 10.0 : 0.0;
  double dm_comm = kDmCommPerAtom * n * (1.0 + kDmCommLogGrowth * lg * lg);
  // Without packing the P^(1) blocks also go out in many small reduces.
  if (!flags.packed_comm) dm_comm *= 4.0;
  t.comm = rho_comm + dm_comm;
  return t;
}

double DfptPerfModel::strong_speedup(std::size_t n_atoms, std::size_t base_ranks,
                                     std::size_t ranks,
                                     const OptimizationFlags& flags) const {
  return predict(n_atoms, base_ranks, flags).total() /
         predict(n_atoms, ranks, flags).total();
}

double DfptPerfModel::weak_efficiency(std::size_t n0, std::size_t p0,
                                      std::size_t n_atoms, std::size_t ranks,
                                      const OptimizationFlags& flags) const {
  // Efficiency of constant work per rank; the superlinear phases (DM, Rho)
  // make it drop as the system grows (paper Sec. 5.3.2).
  const double t0 = predict(n0, p0, flags).total();
  const double t = predict(n_atoms, ranks, flags).total();
  const double work0 = static_cast<double>(n0) / static_cast<double>(p0);
  const double work = static_cast<double>(n_atoms) / static_cast<double>(ranks);
  return (t0 / work0) / (t / work);
}

}  // namespace aeqp::perfmodel
