#pragma once

/// \file comm_matrix.hpp
/// Per-(collective, src -> dst) byte and message accounting: the who-talks-
/// to-whom view the span tracer cannot give. simmpi collectives and the
/// PackedAllReducer record, for every logical transfer a collective
/// implies, which source rank's payload reached which destination rank and
/// how many bytes moved. An allreduce over P ranks with an s-byte payload
/// per rank is modeled as every src sending its s bytes to every dst != src
/// (the information flow of the reduction, independent of the tree the
/// transport actually uses); a broadcast is root -> every other rank.
///
/// Gated by obs::enabled() exactly like the existing collective counters:
/// when tracing is off nothing is recorded and the only cost at a site is
/// the one relaxed atomic load obs::enabled() already performs. Recording
/// takes a per-process mutex -- collectives are millisecond-scale
/// synchronization points, so a microsecond of bookkeeping under the lock
/// is invisible, and it keeps the accumulation trivially TSan-clean.
///
/// Exporters: comm_matrix_json() writes a rank x rank heatmap (total and
/// per-collective) next to the Chrome trace; comm_matrix_summary() feeds
/// the phase report's skew lines. Purely observational -- never feeds back
/// into a computation.

#include <cstdint>
#include <string>
#include <vector>

namespace aeqp::obs {

/// One (collective, src, dst) cell of the communication matrix.
struct CommEdge {
  std::string collective;  ///< e.g. "allreduce_sum", "broadcast", "packed"
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

/// Record one logical transfer. `collective` must outlive the process
/// (string literal). No-op unless obs::enabled().
void comm_record(const char* collective, int src, int dst,
                 std::uint64_t bytes);

/// Record src's payload reaching every other rank of an all-to-all style
/// collective (allreduce information flow). No-op unless obs::enabled().
void comm_record_all(const char* collective, int src, int world_size,
                     std::uint64_t bytes_per_dst);

/// All recorded edges, sorted by (collective, src, dst). Deterministic for
/// a given recording state.
[[nodiscard]] std::vector<CommEdge> comm_edges();

/// Total bytes sent by rank `src` across all collectives (heatmap row sum).
[[nodiscard]] std::uint64_t comm_row_bytes(int src);

/// Ranks x ranks heatmap JSON: world size, per-collective and total dense
/// byte matrices (row = src, col = dst), message counts, and row/column
/// totals with a skew summary. Empty matrices when nothing was recorded.
[[nodiscard]] std::string comm_matrix_json(int indent = 0);

/// Short human skew summary for the phase report ("comm matrix: P ranks,
/// X MiB total, row skew max/mean = ..."). Empty string when nothing was
/// recorded.
[[nodiscard]] std::string comm_matrix_summary();

/// Drop all recorded edges. For tests and back-to-back profiled runs.
void reset_comm_matrix();

/// Write comm_matrix_json() to `path`. Returns false on I/O failure.
bool write_comm_matrix(const std::string& path);

}  // namespace aeqp::obs
