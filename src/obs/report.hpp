#pragma once

/// \file report.hpp
/// Exporters over the trace buffers and metrics registry:
///
///   - write_chrome_trace(): Chrome trace-event JSON loadable in
///     chrome://tracing or Perfetto, one lane per rank x thread, spans as
///     complete ("X") events and instants as "i" events.
///   - write_phase_report(): human-readable end-of-run table -- per span
///     name the call count, total wall seconds, share of the profiled
///     wall time, and per-rank max/min totals (rank skew); followed by
///     instant-event counts and the metrics snapshot (which carries the
///     modeled seconds registered by SimtRuntime and the bytes moved
///     through PackedAllReducer).
///   - profile_json(): the same aggregate as a JSON object fragment, for
///     benches that embed the phase breakdown into their output files.
///   - ScopedRunProfile: RAII driver for main()s -- resets the buffers on
///     entry and, on exit (or finish()), emits the report to stderr and,
///     in full mode, the Chrome trace to AEQP_TRACE_FILE (default
///     "trace.json"). Does nothing when tracing is off.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace aeqp::obs {

/// RAII registration of an extra phase-report section: the writer is called
/// at the end of every write_phase_report() while this object lives, so
/// subsystems with richer state than a counter (the straggler lag table, for
/// instance) can append their own table without the report layer knowing
/// about them. Writers run under the registry lock -- keep them quick and
/// never call back into report/metrics exporters from inside one.
class ScopedReportSection {
public:
  ScopedReportSection() = default;
  explicit ScopedReportSection(std::function<void(std::ostream&)> writer);
  ~ScopedReportSection();
  ScopedReportSection(ScopedReportSection&& o) noexcept;
  ScopedReportSection& operator=(ScopedReportSection&& o) noexcept;
  ScopedReportSection(const ScopedReportSection&) = delete;
  ScopedReportSection& operator=(const ScopedReportSection&) = delete;

private:
  std::uint64_t id_ = 0;  ///< 0 = empty (moved-from or default)
};

/// Aggregate of all completed spans sharing one name.
struct SpanAggregate {
  std::string name;
  std::size_t count = 0;
  double total_s = 0.0;     ///< summed duration over all lanes
  double max_rank_s = 0.0;  ///< largest per-rank total (ranked lanes only)
  double min_rank_s = 0.0;  ///< smallest per-rank total (ranked lanes only)
  std::size_t ranks = 0;    ///< distinct ranks that recorded the span
};

/// Aggregate the current buffers by span name, sorted by descending total
/// time. Host-lane (rank -1) spans contribute to count/total only.
[[nodiscard]] std::vector<SpanAggregate> aggregate_spans();

/// Instant-event counts by name, sorted by name.
struct InstantAggregate {
  std::string name;
  std::size_t count = 0;
};
[[nodiscard]] std::vector<InstantAggregate> aggregate_instants();

/// Write the Chrome trace-event JSON of everything recorded so far.
/// Returns false (and writes nothing) when the file cannot be opened.
bool write_chrome_trace(const std::string& path, const std::string& label);

/// Write the human-readable phase report.
void write_phase_report(std::ostream& os, const std::string& label);

/// Span aggregate + instants + metrics snapshot as a JSON object string
/// (no trailing newline), indented by `indent` spaces per level. For
/// embedding into bench JSON files.
[[nodiscard]] std::string profile_json(int indent = 2);

/// RAII run profiler for program entry points.
class ScopedRunProfile {
public:
  /// `label` names the run in the report header and the trace metadata.
  /// Resets trace buffers (not metrics counters) so the profile covers
  /// exactly this object's lifetime. No-op in off mode.
  explicit ScopedRunProfile(std::string label);
  ~ScopedRunProfile();
  ScopedRunProfile(const ScopedRunProfile&) = delete;
  ScopedRunProfile& operator=(const ScopedRunProfile&) = delete;

  /// Emit the report (and trace.json in full mode) now instead of at
  /// destruction. Idempotent.
  void finish();

  /// Path the Chrome trace was (or will be) written to in full mode:
  /// AEQP_TRACE_FILE or "trace.json".
  [[nodiscard]] const std::string& trace_path() const { return trace_path_; }

  /// Path the rank x rank communication heatmap is written to in full
  /// mode when any collective recorded an edge: AEQP_COMM_MATRIX_FILE or
  /// "comm_matrix.json".
  [[nodiscard]] const std::string& comm_matrix_path() const {
    return comm_matrix_path_;
  }

private:
  std::string label_;
  std::string trace_path_;
  std::string comm_matrix_path_;
  bool finished_ = false;
};

}  // namespace aeqp::obs
