#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/thread_ident.hpp"
#include "obs/flight.hpp"

namespace aeqp::obs {

namespace detail {
std::atomic<int> g_gate{-1};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// Chunked single-writer event buffer. The owning thread appends and
/// publishes the count with a release store; collectors acquire the count
/// and read only slots below it. Chunks are heap-allocated once and never
/// move, so a concurrent reader never observes a reallocating backing
/// store. The chunk list itself is guarded by a mutex taken only when a
/// chunk is added (rare) and during collection.
class TraceBuffer {
public:
  static constexpr std::size_t kChunkEvents = 4096;
  /// Hard cap per buffer; beyond it events are dropped (counted).
  static constexpr std::size_t kMaxEvents = 1u << 22;

  explicit TraceBuffer(std::size_t index) : index_(index) {}

  void push(const TraceEvent& e) {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n >= kMaxEvents) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (n % kChunkEvents == 0) {
      const std::lock_guard<std::mutex> lock(chunks_mutex_);
      chunks_.push_back(std::make_unique<Chunk>());
    }
    chunk_slot(n) = e;
    count_.store(n + 1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] std::size_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Copy every published event (reader side).
  void snapshot(std::vector<CollectedEvent>& out) const {
    const std::size_t n = count_.load(std::memory_order_acquire);
    const std::lock_guard<std::mutex> lock(chunks_mutex_);
    for (std::size_t i = 0; i < n; ++i)
      out.push_back({chunks_[i / kChunkEvents]->events[i % kChunkEvents],
                     index_, i});
  }

  /// Discard published events (collector-side reset at a quiescent point).
  void clear() {
    const std::lock_guard<std::mutex> lock(chunks_mutex_);
    chunks_.clear();
    count_.store(0, std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
  }

private:
  struct Chunk {
    std::array<TraceEvent, kChunkEvents> events;
  };

  // Owner-only access: the owning thread is the sole mutator of chunks_
  // (push_back happens under the mutex in push(); collectors only read
  // under the same mutex), so indexing without the lock is race-free.
  TraceEvent& chunk_slot(std::size_t n) {
    return chunks_[n / kChunkEvents]->events[n % kChunkEvents];
  }

  std::size_t index_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::size_t> dropped_{0};
  mutable std::mutex chunks_mutex_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  Clock::time_point epoch = Clock::now();
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives every thread exit
  return *r;
}

thread_local std::shared_ptr<TraceBuffer> tl_buffer;

TraceBuffer& thread_buffer() {
  if (!tl_buffer) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    tl_buffer = std::make_shared<TraceBuffer>(r.buffers.size());
    r.buffers.push_back(tl_buffer);
  }
  return *tl_buffer;
}

}  // namespace

namespace detail {

int init_gate_from_env() {
  int gate = 0;
  if (const char* env = std::getenv("AEQP_TRACE")) {
    if (std::strcmp(env, "summary") == 0)
      gate |= static_cast<int>(TraceMode::Summary);
    else if (std::strcmp(env, "full") == 0)
      gate |= static_cast<int>(TraceMode::Full);
    // anything else (incl. "off") leaves the mode bits Off
  }
  if (const char* env = std::getenv("AEQP_FLIGHT")) {
    if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0)
      gate |= kGateFlight;
  }
  int expected = -1;
  g_gate.compare_exchange_strong(expected, gate, std::memory_order_relaxed);
  return g_gate.load(std::memory_order_relaxed);
}

void record(const char* name, EventType type) {
  const int g = gate();
  TraceEvent e;
  e.name = name;
  e.type = type;
  e.rank = thread_rank();
  e.ts_us = now_us();
  if ((g & kGateModeMask) != 0) thread_buffer().push(e);
  if ((g & kGateFlight) != 0) flight_push(e);
}

}  // namespace detail

void set_mode(TraceMode m) {
  const int g = detail::gate();  // forces env init so the flight bit holds
  detail::g_gate.store((g & ~detail::kGateModeMask) | static_cast<int>(m),
                       std::memory_order_relaxed);
}

void set_flight(bool on) {
  const int g = detail::gate();
  detail::g_gate.store(on ? (g | detail::kGateFlight)
                          : (g & ~detail::kGateFlight),
                       std::memory_order_relaxed);
}

double now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   registry().epoch)
      .count();
}

void trace_instant(const char* name) {
  if (detail::gate() == 0) return;
  detail::record(name, EventType::Instant);
}

std::vector<CollectedEvent> collect_events() {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    buffers = r.buffers;
  }
  std::vector<CollectedEvent> out;
  for (const auto& b : buffers) b->snapshot(out);
  // snapshot() appends per buffer in registration order, each buffer in
  // seq order, so the merge is already deterministic for a given set of
  // recorded events.
  return out;
}

std::vector<CompletedSpan> completed_spans() {
  const std::vector<CollectedEvent> events = collect_events();
  std::vector<CompletedSpan> spans;
  // Pair within each lane with a stack; events are lane-major and
  // seq-ordered, so one linear walk with a per-lane reset suffices.
  struct Open {
    const char* name;
    int rank;
    double ts_us;
    std::size_t order;  ///< spans.size() at push -> stable output position
  };
  std::vector<Open> stack;
  std::size_t current_lane = static_cast<std::size_t>(-1);
  for (const CollectedEvent& ce : events) {
    if (ce.thread_index != current_lane) {
      stack.clear();  // unmatched Begins of the previous lane are dropped
      current_lane = ce.thread_index;
    }
    const TraceEvent& e = ce.event;
    if (e.type == EventType::Begin) {
      CompletedSpan s;  // placeholder at the Begin position; filled on End
      s.name = e.name;
      s.rank = e.rank;
      s.thread_index = ce.thread_index;
      s.depth = static_cast<int>(stack.size());
      s.ts_us = e.ts_us;
      s.dur_us = -1.0;
      stack.push_back({e.name, e.rank, e.ts_us, spans.size()});
      spans.push_back(s);
    } else if (e.type == EventType::End) {
      // Pop to the matching name (tolerates a missed End from an
      // exception-skipped scope; TraceScope itself always closes).
      while (!stack.empty()) {
        const Open top = stack.back();
        stack.pop_back();
        if (top.name == e.name || std::strcmp(top.name, e.name) == 0) {
          spans[top.order].dur_us = e.ts_us - top.ts_us;
          break;
        }
      }
    }
  }
  // Drop placeholders whose End never arrived (span still open at collect).
  spans.erase(std::remove_if(spans.begin(), spans.end(),
                             [](const CompletedSpan& s) { return s.dur_us < 0; }),
              spans.end());
  return spans;
}

std::size_t registered_thread_count() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return r.buffers.size();
}

std::size_t dropped_events() {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    buffers = r.buffers;
  }
  std::size_t n = 0;
  for (const auto& b : buffers) n += b->dropped();
  return n;
}

void reset() {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    buffers = r.buffers;
  }
  for (const auto& b : buffers) b->clear();
}

}  // namespace aeqp::obs
