#include "obs/comm_matrix.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>

#include "obs/trace.hpp"

namespace aeqp::obs {

namespace {

struct Cell {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

struct CommState {
  std::mutex mutex;
  std::map<std::string, std::map<std::pair<int, int>, Cell>> cells;
  int max_rank = -1;
};

CommState& state() {
  static CommState* s = new CommState();  // leaked: process lifetime
  return *s;
}

}  // namespace

void comm_record(const char* collective, int src, int dst,
                 std::uint64_t bytes) {
  if (!enabled()) return;
  CommState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  Cell& cell = s.cells[collective][{src, dst}];
  cell.bytes += bytes;
  cell.messages += 1;
  s.max_rank = std::max({s.max_rank, src, dst});
}

void comm_record_all(const char* collective, int src, int world_size,
                     std::uint64_t bytes_per_dst) {
  if (!enabled()) return;
  CommState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  auto& per_collective = s.cells[collective];
  for (int dst = 0; dst < world_size; ++dst) {
    if (dst == src) continue;
    Cell& cell = per_collective[{src, dst}];
    cell.bytes += bytes_per_dst;
    cell.messages += 1;
  }
  s.max_rank = std::max(s.max_rank, world_size - 1);
}

std::vector<CommEdge> comm_edges() {
  CommState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<CommEdge> out;
  for (const auto& [collective, cells] : s.cells)
    for (const auto& [key, cell] : cells)
      out.push_back(
          {collective, key.first, key.second, cell.bytes, cell.messages});
  return out;  // map iteration order is already (collective, src, dst)
}

std::uint64_t comm_row_bytes(int src) {
  CommState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::uint64_t total = 0;
  for (const auto& [collective, cells] : s.cells)
    for (const auto& [key, cell] : cells)
      if (key.first == src) total += cell.bytes;
  return total;
}

namespace {

/// Dense row-major matrix built from one collective's (or all) cells.
std::vector<std::uint64_t> dense_bytes(
    const std::map<std::string, std::map<std::pair<int, int>, Cell>>& cells,
    const std::string* only, int world) {
  std::vector<std::uint64_t> m(
      static_cast<std::size_t>(world) * static_cast<std::size_t>(world), 0);
  for (const auto& [collective, per] : cells) {
    if (only != nullptr && collective != *only) continue;
    for (const auto& [key, cell] : per)
      m[static_cast<std::size_t>(key.first) * world + key.second] +=
          cell.bytes;
  }
  return m;
}

void append_matrix(std::ostringstream& os, const std::vector<std::uint64_t>& m,
                   int world, const std::string& pad) {
  os << "[";
  for (int r = 0; r < world; ++r) {
    os << (r == 0 ? "" : ",") << "\n" << pad << "  [";
    for (int c = 0; c < world; ++c)
      os << (c == 0 ? "" : ", ")
         << m[static_cast<std::size_t>(r) * world + c];
    os << "]";
  }
  if (world > 0) os << "\n" << pad;
  os << "]";
}

}  // namespace

std::string comm_matrix_json(int indent) {
  // Snapshot under the lock, format outside it.
  std::map<std::string, std::map<std::pair<int, int>, Cell>> cells;
  int world = 0;
  {
    CommState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    cells = s.cells;
    world = s.max_rank + 1;
  }
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << pad << "{\n";
  os << pad << "  \"schema_version\": 1,\n";
  os << pad << "  \"world_size\": " << world << ",\n";

  std::uint64_t total_bytes = 0, total_messages = 0;
  for (const auto& [collective, per] : cells)
    for (const auto& [key, cell] : per) {
      total_bytes += cell.bytes;
      total_messages += cell.messages;
    }
  os << pad << "  \"total_bytes\": " << total_bytes << ",\n";
  os << pad << "  \"total_messages\": " << total_messages << ",\n";

  const std::vector<std::uint64_t> total = dense_bytes(cells, nullptr, world);
  std::vector<std::uint64_t> row(world, 0), col(world, 0);
  for (int r = 0; r < world; ++r)
    for (int c = 0; c < world; ++c) {
      const std::uint64_t b = total[static_cast<std::size_t>(r) * world + c];
      row[r] += b;
      col[c] += b;
    }
  std::uint64_t row_max = 0, row_sum = 0;
  for (int r = 0; r < world; ++r) {
    row_max = std::max(row_max, row[r]);
    row_sum += row[r];
  }
  const double row_mean = world > 0 ? static_cast<double>(row_sum) / world : 0;
  char skew[64];
  std::snprintf(skew, sizeof skew, "%.6g",
                row_mean > 0 ? static_cast<double>(row_max) / row_mean : 0.0);

  os << pad << "  \"row_bytes\": [";
  for (int r = 0; r < world; ++r) os << (r == 0 ? "" : ", ") << row[r];
  os << "],\n";
  os << pad << "  \"col_bytes\": [";
  for (int c = 0; c < world; ++c) os << (c == 0 ? "" : ", ") << col[c];
  os << "],\n";
  os << pad << "  \"row_skew_max_over_mean\": " << skew << ",\n";

  os << pad << "  \"bytes\": ";
  append_matrix(os, total, world, pad + "  ");
  os << ",\n";

  os << pad << "  \"collectives\": {";
  bool first = true;
  for (const auto& [collective, per] : cells) {
    os << (first ? "" : ",") << "\n"
       << pad << "    \"" << collective << "\": ";
    append_matrix(os, dense_bytes(cells, &collective, world), world,
                  pad + "    ");
    first = false;
  }
  if (!cells.empty()) os << "\n" << pad << "  ";
  os << "}\n";
  os << pad << "}";
  return os.str();
}

std::string comm_matrix_summary() {
  std::map<std::string, std::map<std::pair<int, int>, Cell>> cells;
  int world = 0;
  {
    CommState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    cells = s.cells;
    world = s.max_rank + 1;
  }
  if (world <= 0 || cells.empty()) return {};
  std::vector<std::uint64_t> row(world, 0);
  std::uint64_t total_bytes = 0, total_messages = 0;
  for (const auto& [collective, per] : cells)
    for (const auto& [key, cell] : per) {
      row[key.first] += cell.bytes;
      total_bytes += cell.bytes;
      total_messages += cell.messages;
    }
  std::uint64_t row_max = 0;
  for (int r = 0; r < world; ++r) row_max = std::max(row_max, row[r]);
  const double row_mean = static_cast<double>(total_bytes) / world;
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "comm matrix: %d ranks, %.3f MiB / %llu messages, "
                "row skew max/mean = %.2f",
                world, static_cast<double>(total_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(total_messages),
                row_mean > 0 ? static_cast<double>(row_max) / row_mean : 0.0);
  return buf;
}

void reset_comm_matrix() {
  CommState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.cells.clear();
  s.max_rank = -1;
}

bool write_comm_matrix(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = comm_matrix_json(0);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool newline_ok = std::fputc('\n', f) != EOF;
  return (std::fclose(f) == 0) && ok && newline_ok;
}

}  // namespace aeqp::obs
