#pragma once

/// \file memaudit.hpp
/// Registered-scope byte accounting for every per-rank structure that grows
/// with global N -- the audit ROADMAP item 3 asks for ("we cannot shard
/// what we cannot see"). Owners of N-scaling state register the bytes they
/// hold against a named gauge:
///
///   obs::MemScope mem("basis/spline_tables");   // RAII registration
///   mem.add(samples.capacity() * sizeof(double));
///   // ... destructor releases everything it added
///
///   obs::mem_track("dfpt/p1_replicated", +bytes);  // manual delta
///   obs::mem_peak("resilience/checkpoint_frame", bytes);  // transient blob
///
/// Each gauge is a pair of relaxed atomics (current bytes, peak bytes);
/// concurrent rank threads add and subtract deltas, so `current` is the sum
/// over live owners and `peak` the process high-water mark. Gauges fold
/// into the existing metrics registry as "mem/<name>/current_bytes" and
/// "mem/<name>/peak_bytes" samples, so every exporter (phase report,
/// profile_json, bench JSON embeds) carries them for free.
///
/// Gating mirrors AEQP_TRACE: the env var AEQP_MEMAUDIT (off | on, read
/// once on first use, overridable with set_memaudit) arms the layer; when
/// off every site costs exactly one relaxed atomic load -- no gauge is
/// created, no registry touched, nothing recorded. The audit observes and
/// never feeds back into a computation: a run with AEQP_MEMAUDIT=on is
/// bit-for-bit identical to an unaudited run (asserted in test_obs).
///
/// Gauge names must be string literals (or otherwise outlive the process):
/// the registry stores the pointer for hot-path lookup caching. Naming
/// convention "module/structure", e.g. "basis/spline_tables".

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace aeqp::obs {

namespace detail {
/// -1 = not yet initialized from AEQP_MEMAUDIT.
extern std::atomic<int> g_memaudit;
bool init_memaudit_from_env();
}  // namespace detail

/// Whether the memory audit is armed. One relaxed atomic load (the whole
/// cost of an instrumentation site when the audit is off).
[[nodiscard]] inline bool memaudit_enabled() {
  const int m = detail::g_memaudit.load(std::memory_order_relaxed);
  if (m >= 0) return m != 0;
  return detail::init_memaudit_from_env();
}

/// Programmatic override (tests, benches). Takes effect immediately.
void set_memaudit(bool on);

/// One byte gauge: current = sum of outstanding deltas, peak = high-water.
/// Obtain via mem_gauge(); references stay valid for the process lifetime.
class MemGauge {
public:
  /// Apply a signed delta to `current` and raise `peak` to the new value.
  /// Relaxed atomics: purely observational, never ordering-critical.
  void add(std::int64_t delta) {
    const std::int64_t now =
        current_.fetch_add(delta, std::memory_order_relaxed) + delta;
    raise_peak(now);
  }

  /// Raise `peak` to at least `bytes` without touching `current` -- the
  /// hook for transient allocations (serialized checkpoint frames) whose
  /// lifetime is too short for delta tracking to mean anything.
  void note_peak(std::int64_t bytes) { raise_peak(bytes); }

  [[nodiscard]] std::int64_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t peak() const {
    return peak_.load(std::memory_order_relaxed);
  }
  void reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

private:
  void raise_peak(std::int64_t now) {
    std::int64_t prev = peak_.load(std::memory_order_relaxed);
    while (now > prev &&
           !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> current_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Look up (creating on first use) the process-wide gauge `name`. The
/// lookup takes a mutex -- cache the reference outside loops. `name` must
/// outlive the process (string literal).
[[nodiscard]] MemGauge& mem_gauge(const char* name);

/// Apply a delta to gauge `name` when the audit is armed; single relaxed
/// atomic load and out when it is not.
inline void mem_track(const char* name, std::int64_t delta_bytes) {
  if (!memaudit_enabled()) return;
  mem_gauge(name).add(delta_bytes);
}

/// Record a transient allocation's size into gauge `name`'s peak only.
inline void mem_peak(const char* name, std::int64_t bytes) {
  if (!memaudit_enabled()) return;
  mem_gauge(name).note_peak(bytes);
}

/// RAII byte registration: everything add()ed through this object is
/// subtracted from the gauge when the object is destroyed, so owners (a
/// BasisSet, a rank thread's solve scope) cannot leak accounting. Movable;
/// a moved-from scope releases nothing. In off mode every method is a
/// single relaxed atomic load.
class MemScope {
public:
  MemScope() = default;
  explicit MemScope(const char* name) : name_(name) {}
  ~MemScope() { release(); }
  MemScope(MemScope&& o) noexcept : name_(o.name_), held_(o.held_) {
    o.name_ = nullptr;
    o.held_ = 0;
  }
  MemScope& operator=(MemScope&& o) noexcept {
    if (this != &o) {
      release();
      name_ = o.name_;
      held_ = o.held_;
      o.name_ = nullptr;
      o.held_ = 0;
    }
    return *this;
  }
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;

  /// Account `bytes` against the gauge for the rest of this scope's life.
  void add(std::int64_t bytes) {
    if (name_ == nullptr || !memaudit_enabled()) return;
    held_ += bytes;
    mem_gauge(name_).add(bytes);
  }

  [[nodiscard]] std::int64_t held() const { return held_; }
  [[nodiscard]] const char* name() const { return name_; }

  /// Release everything held now instead of at destruction. Idempotent.
  void release() {
    if (name_ != nullptr && held_ != 0) mem_gauge(name_).add(-held_);
    held_ = 0;
  }

private:
  const char* name_ = nullptr;
  std::int64_t held_ = 0;
};

/// Snapshot of one gauge, for exporters and the fig09a memory bench.
struct MemGaugeSample {
  std::string name;
  std::int64_t current_bytes = 0;
  std::int64_t peak_bytes = 0;
};

/// All registered gauges, sorted by name. Deterministic for a given
/// registry state. Empty when the audit never armed.
[[nodiscard]] std::vector<MemGaugeSample> mem_snapshot();

/// Number of gauges ever registered. Exposed so tests can assert the
/// off-mode path registers nothing.
[[nodiscard]] std::size_t registered_gauge_count();

/// Zero every gauge (registrations stay). For tests and back-to-back
/// bench sweeps.
void reset_mem_gauges();

/// Least-squares slope of log(bytes) vs log(n): the scaling exponent of a
/// structure's footprint (1 = O(N), 2 = O(N^2), ~0 = replication-free).
/// Requires >= 2 samples with positive n and bytes; returns 0 otherwise.
[[nodiscard]] double fit_scaling_exponent(std::span<const double> n,
                                          std::span<const double> bytes);

}  // namespace aeqp::obs
