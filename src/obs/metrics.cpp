#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace aeqp::obs {

namespace {

struct MetricsState {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::size_t, MetricsFn> sources;
  std::size_t next_id = 1;
};

MetricsState& state() {
  static MetricsState* s = new MetricsState();  // leaked: process lifetime
  return *s;
}

}  // namespace

Counter& counter(const std::string& name) {
  MetricsState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  auto& slot = s.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

std::size_t add_metrics_source(MetricsFn fn) {
  MetricsState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  const std::size_t id = s.next_id++;
  s.sources.emplace(id, std::move(fn));
  return id;
}

void remove_metrics_source(std::size_t id) {
  MetricsState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.sources.erase(id);
}

std::vector<MetricSample> metrics_snapshot() {
  MetricsState& s = state();
  std::vector<MetricSample> out;
  std::vector<MetricsFn> sources;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& [name, c] : s.counters)
      if (c->value() != 0)
        out.push_back({name, static_cast<double>(c->value())});
    sources.reserve(s.sources.size());
    for (const auto& [id, fn] : s.sources) sources.push_back(fn);
  }
  // Sources run outside the lock so a source may itself query counters.
  for (const auto& fn : sources) fn(out);
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_counters() {
  MetricsState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& [name, c] : s.counters) c->reset();
}

}  // namespace aeqp::obs
