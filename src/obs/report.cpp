#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iomanip>
#include <iostream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/comm_matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aeqp::obs {

namespace {

/// JSON string escaping (names are ASCII identifiers, but be safe).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Registry of extra report sections (ScopedReportSection). Guarded by its
/// own mutex; sections are appended in registration order.
struct SectionRegistry {
  std::mutex mutex;
  std::uint64_t next_id = 1;
  std::vector<std::pair<std::uint64_t, std::function<void(std::ostream&)>>>
      writers;
};

SectionRegistry& sections() {
  static SectionRegistry* r = new SectionRegistry;
  return *r;
}

void write_extra_sections(std::ostream& os) {
  SectionRegistry& r = sections();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& [id, writer] : r.writers)
    if (writer) writer(os);
}

}  // namespace

ScopedReportSection::ScopedReportSection(
    std::function<void(std::ostream&)> writer) {
  SectionRegistry& r = sections();
  const std::lock_guard<std::mutex> lock(r.mutex);
  id_ = r.next_id++;
  r.writers.emplace_back(id_, std::move(writer));
}

ScopedReportSection::~ScopedReportSection() {
  if (id_ == 0) return;
  SectionRegistry& r = sections();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::erase_if(r.writers, [this](const auto& w) { return w.first == id_; });
}

ScopedReportSection::ScopedReportSection(ScopedReportSection&& o) noexcept
    : id_(o.id_) {
  o.id_ = 0;
}

ScopedReportSection& ScopedReportSection::operator=(
    ScopedReportSection&& o) noexcept {
  if (this != &o) {
    if (id_ != 0) {
      SectionRegistry& r = sections();
      const std::lock_guard<std::mutex> lock(r.mutex);
      std::erase_if(r.writers,
                    [this](const auto& w) { return w.first == id_; });
    }
    id_ = o.id_;
    o.id_ = 0;
  }
  return *this;
}

std::vector<SpanAggregate> aggregate_spans() {
  const auto spans = completed_spans();
  struct Acc {
    std::size_t count = 0;
    double total_s = 0.0;
    std::map<int, double> per_rank;
  };
  std::map<std::string, Acc> by_name;
  for (const CompletedSpan& s : spans) {
    Acc& a = by_name[s.name];
    ++a.count;
    a.total_s += s.dur_us * 1e-6;
    if (s.rank >= 0) a.per_rank[s.rank] += s.dur_us * 1e-6;
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (const auto& [name, a] : by_name) {
    SpanAggregate agg;
    agg.name = name;
    agg.count = a.count;
    agg.total_s = a.total_s;
    agg.ranks = a.per_rank.size();
    if (!a.per_rank.empty()) {
      agg.max_rank_s = 0.0;
      agg.min_rank_s = a.per_rank.begin()->second;
      for (const auto& [rank, sec] : a.per_rank) {
        agg.max_rank_s = std::max(agg.max_rank_s, sec);
        agg.min_rank_s = std::min(agg.min_rank_s, sec);
      }
    }
    out.push_back(std::move(agg));
  }
  std::sort(out.begin(), out.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              if (a.total_s != b.total_s) return a.total_s > b.total_s;
              return a.name < b.name;
            });
  return out;
}

std::vector<InstantAggregate> aggregate_instants() {
  std::map<std::string, std::size_t> by_name;
  for (const CollectedEvent& ce : collect_events())
    if (ce.event.type == EventType::Instant) ++by_name[ce.event.name];
  std::vector<InstantAggregate> out;
  out.reserve(by_name.size());
  for (const auto& [name, count] : by_name) out.push_back({name, count});
  return out;
}

bool write_chrome_trace(const std::string& path, const std::string& label) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;

  const auto events = collect_events();
  const auto spans = completed_spans();

  // Lane naming: pid = rank + 1 (0 = host threads), tid = thread index.
  std::fprintf(f, "{\n  \"displayTimeUnit\": \"ms\",\n");
  std::fprintf(f, "  \"otherData\": {\"label\": \"%s\"},\n",
               json_escape(label).c_str());
  std::fprintf(f, "  \"traceEvents\": [\n");

  bool first = true;
  const auto sep = [&] {
    if (!first) std::fprintf(f, ",\n");
    first = false;
  };

  // Metadata: name each process lane once.
  std::map<int, bool> pids;
  for (const CollectedEvent& ce : events) pids[ce.event.rank + 1] = true;
  for (const auto& [pid, unused] : pids) {
    sep();
    if (pid == 0)
      std::fprintf(f,
                   "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0,"
                   " \"args\": {\"name\": \"host\"}}");
    else
      std::fprintf(f,
                   "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d,"
                   " \"args\": {\"name\": \"rank %d\"}}",
                   pid, pid - 1);
  }

  for (const CompletedSpan& s : spans) {
    sep();
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, "
                 "\"dur\": %.3f, \"pid\": %d, \"tid\": %zu}",
                 json_escape(s.name).c_str(), s.ts_us, s.dur_us, s.rank + 1,
                 s.thread_index);
  }
  for (const CollectedEvent& ce : events) {
    if (ce.event.type != EventType::Instant) continue;
    sep();
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ph\": \"i\", \"ts\": %.3f, "
                 "\"pid\": %d, \"tid\": %zu, \"s\": \"t\"}",
                 json_escape(ce.event.name).c_str(), ce.event.ts_us,
                 ce.event.rank + 1, ce.thread_index);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return true;
}

void write_phase_report(std::ostream& os, const std::string& label) {
  const auto aggs = aggregate_spans();
  const auto instants = aggregate_instants();
  const auto metrics = metrics_snapshot();

  // Profiled wall time: the extent of all top-level events.
  double t_min = 0.0, t_max = 0.0;
  bool any = false;
  for (const CollectedEvent& ce : collect_events()) {
    if (!any) {
      t_min = t_max = ce.event.ts_us;
      any = true;
    }
    t_min = std::min(t_min, ce.event.ts_us);
    t_max = std::max(t_max, ce.event.ts_us);
  }
  for (const CompletedSpan& s : completed_spans())
    t_max = std::max(t_max, s.ts_us + s.dur_us);
  const double wall_s = any ? (t_max - t_min) * 1e-6 : 0.0;

  os << "== aeqp phase report: " << label << " ==\n";
  os << "profiled wall time: " << std::fixed << std::setprecision(3) << wall_s
     << " s\n";
  if (aggs.empty()) {
    os << "(no spans recorded; set AEQP_TRACE=summary or full)\n";
  } else {
    os << std::left << std::setw(32) << "span" << std::right << std::setw(8)
       << "calls" << std::setw(12) << "total(s)" << std::setw(12) << "mean(ms)"
       << std::setw(8) << "%wall" << std::setw(22) << "rank max/min (s)"
       << "\n";
    for (const SpanAggregate& a : aggs) {
      os << std::left << std::setw(32) << a.name << std::right << std::setw(8)
         << a.count << std::setw(12) << std::setprecision(4) << a.total_s
         << std::setw(12) << std::setprecision(3)
         << (a.count > 0 ? a.total_s * 1e3 / static_cast<double>(a.count) : 0.0)
         << std::setw(7) << std::setprecision(1)
         << (wall_s > 0 ? 100.0 * a.total_s / wall_s : 0.0) << "%";
      if (a.ranks > 0) {
        std::ostringstream skew;
        skew << std::setprecision(4) << std::fixed << a.max_rank_s << "/"
             << a.min_rank_s << " (" << a.ranks << "r)";
        os << std::setw(22) << skew.str();
      }
      os << "\n";
    }
  }
  if (!instants.empty()) {
    os << "instants:\n";
    for (const InstantAggregate& i : instants)
      os << "  " << std::left << std::setw(34) << i.name << " x" << i.count
         << "\n";
  }
  if (!metrics.empty()) {
    os << "metrics:\n";
    for (const MetricSample& m : metrics)
      os << "  " << std::left << std::setw(34) << m.name << " "
         << format_number(m.value) << "\n";
  }
  if (const std::string comm = comm_matrix_summary(); !comm.empty())
    os << comm << "\n";
  write_extra_sections(os);
  os.unsetf(std::ios::fixed);
  os << std::setprecision(6);
}

std::string profile_json(int indent) {
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  const std::string pad2 = pad + pad;
  std::ostringstream os;
  os << "{\n";
  os << pad << "\"spans\": [\n";
  const auto aggs = aggregate_spans();
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    const SpanAggregate& a = aggs[i];
    os << pad2 << "{\"name\": \"" << json_escape(a.name)
       << "\", \"calls\": " << a.count << ", \"total_s\": "
       << format_number(a.total_s);
    if (a.ranks > 0)
      os << ", \"ranks\": " << a.ranks
         << ", \"max_rank_s\": " << format_number(a.max_rank_s)
         << ", \"min_rank_s\": " << format_number(a.min_rank_s);
    os << "}" << (i + 1 < aggs.size() ? "," : "") << "\n";
  }
  os << pad << "],\n";
  os << pad << "\"metrics\": {";
  const auto metrics = metrics_snapshot();
  for (std::size_t i = 0; i < metrics.size(); ++i)
    os << (i ? ", " : "") << "\"" << json_escape(metrics[i].name)
       << "\": " << format_number(metrics[i].value);
  os << "}\n";
  os << "}";
  return os.str();
}

ScopedRunProfile::ScopedRunProfile(std::string label)
    : label_(std::move(label)) {
  const char* env = std::getenv("AEQP_TRACE_FILE");
  trace_path_ = env && *env ? env : "trace.json";
  const char* cenv = std::getenv("AEQP_COMM_MATRIX_FILE");
  comm_matrix_path_ = cenv && *cenv ? cenv : "comm_matrix.json";
  if (mode() == TraceMode::Off) {
    finished_ = true;  // nothing to emit later
    return;
  }
  reset();
  reset_comm_matrix();
}

ScopedRunProfile::~ScopedRunProfile() { finish(); }

void ScopedRunProfile::finish() {
  if (finished_) return;
  finished_ = true;
  if (mode() == TraceMode::Full) {
    if (write_chrome_trace(trace_path_, label_))
      std::cerr << "[aeqp obs] wrote " << trace_path_ << "\n";
    else
      std::cerr << "[aeqp obs] could not write " << trace_path_ << "\n";
    // Heatmap JSON rides next to the Chrome trace whenever any collective
    // recorded an edge.
    if (!comm_edges().empty()) {
      if (write_comm_matrix(comm_matrix_path_))
        std::cerr << "[aeqp obs] wrote " << comm_matrix_path_ << "\n";
      else
        std::cerr << "[aeqp obs] could not write " << comm_matrix_path_
                  << "\n";
    }
  }
  write_phase_report(std::cerr, label_);
}

}  // namespace aeqp::obs
