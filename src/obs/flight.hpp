#pragma once

/// \file flight.hpp
/// Per-rank flight recorder: a lock-free ring holding the last K spans,
/// instants, and metric deltas each thread recorded, dumped to a
/// post-mortem JSON the moment a structured error escapes (RankFailure,
/// InvariantViolation, AbftError, PayloadCorruption, DeadlineExceeded).
/// Chaos-soak and service failures become diagnosable after the fact
/// without paying for full tracing: the ring is bounded, so an armed
/// recorder costs a handful of relaxed stores per event regardless of run
/// length.
///
/// Gating shares the trace layer's single combined gate atomic (bit 2 =
/// flight, env var AEQP_FLIGHT=on, overridable with set_flight): when both
/// tracing and the recorder are off, a TraceScope or trace_instant still
/// costs exactly one relaxed atomic load. With only the recorder armed,
/// span Begin/End and instants are captured into the ring and nothing is
/// allocated in the trace buffers.
///
/// Ring slots are structs of relaxed atomics and the head is published
/// with a release store, so concurrent dump-time readers are race-free
/// (TSan-clean). A reader racing a very active writer may observe a slot
/// mixing two generations -- acceptable for a best-effort post-mortem,
/// and error paths are quiescent in practice.
///
/// flight_on_error(kind, what) is the hook error paths call from catch
/// blocks: it records an Error event, dumps the ring plus a metrics
/// snapshot to AEQP_FLIGHT_FILE (default "flight.json", latest error
/// wins), and bumps the flight/dumps counter. It never throws.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace aeqp::obs {

namespace detail {
/// Capture a trace-layer event into the recording thread's ring (called
/// by detail::record when the flight bit is set).
void flight_push(const TraceEvent& e);
}  // namespace detail

/// Programmatic override of the flight bit (tests, services). Takes
/// effect immediately; trace mode bits are untouched.
void set_flight(bool on);

/// Record a named metric delta into the ring (e.g. bytes this flush,
/// retries this attempt). One relaxed atomic load and out when the
/// recorder is off. `name` must outlive the process (string literal).
void flight_metric(const char* name, double delta);

/// What one ring entry is.
enum class FlightKind : std::uint8_t {
  Begin = 0,
  End = 1,
  Instant = 2,
  Metric = 3,
  Error = 4,
};

/// One recovered ring entry.
struct FlightEvent {
  const char* name = nullptr;
  FlightKind kind = FlightKind::Instant;
  int rank = -1;
  double ts_us = 0.0;
  double value = 0.0;       ///< metric delta (Metric entries only)
  std::size_t lane = 0;     ///< ring registration order (stable)
  std::uint64_t seq = 0;    ///< monotonic position within its ring
};

/// Snapshot of every ring's surviving entries, ordered by (lane, seq).
[[nodiscard]] std::vector<FlightEvent> flight_events();

/// Number of rings ever registered (one per thread that recorded at least
/// one event while armed). Exposed so tests can assert the disabled path
/// allocates nothing.
[[nodiscard]] std::size_t flight_lane_count();

/// Post-mortem hook: record an Error entry, then dump the ring and a
/// metrics snapshot as JSON to AEQP_FLIGHT_FILE (default "flight.json").
/// Never throws; failures to write are swallowed (we are already on an
/// error path). No-op when the recorder is off.
void flight_on_error(const char* error_kind, const std::string& what) noexcept;

/// Dumps performed so far (mirrors the flight/dumps counter).
[[nodiscard]] std::uint64_t flight_dump_count();

/// The JSON body a dump writes (schema in docs/observability.md). For
/// tests and exporters wanting the dump without the file.
[[nodiscard]] std::string flight_json(const char* error_kind,
                                      const std::string& what);

/// Drop all ring contents (rings stay registered). For tests.
void reset_flight();

}  // namespace aeqp::obs
