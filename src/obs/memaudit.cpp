#include "obs/memaudit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"

namespace aeqp::obs {

namespace detail {
std::atomic<int> g_memaudit{-1};
}  // namespace detail

namespace {

struct MemState {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<MemGauge>> gauges;
  bool source_registered = false;
};

MemState& state() {
  static MemState* s = new MemState();  // leaked: process lifetime
  return *s;
}

void export_gauges(std::vector<MetricSample>& out) {
  for (const MemGaugeSample& g : mem_snapshot()) {
    out.push_back({"mem/" + g.name + "/current_bytes",
                   static_cast<double>(g.current_bytes)});
    out.push_back(
        {"mem/" + g.name + "/peak_bytes", static_cast<double>(g.peak_bytes)});
  }
}

}  // namespace

namespace detail {

bool init_memaudit_from_env() {
  const char* env = std::getenv("AEQP_MEMAUDIT");
  int on = 0;
  if (env != nullptr &&
      (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0)) {
    on = 1;
  }
  // First initializer wins; a concurrent set_memaudit is not overwritten.
  int expected = -1;
  if (!g_memaudit.compare_exchange_strong(expected, on,
                                          std::memory_order_relaxed)) {
    on = expected;
  }
  return on != 0;
}

}  // namespace detail

void set_memaudit(bool on) {
  detail::g_memaudit.store(on ? 1 : 0, std::memory_order_relaxed);
}

MemGauge& mem_gauge(const char* name) {
  MemState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.source_registered) {
    // Folded into the metrics registry on first gauge creation, so runs
    // that never arm the audit contribute nothing to metrics_snapshot().
    add_metrics_source(export_gauges);
    s.source_registered = true;
  }
  auto& slot = s.gauges[name];
  if (!slot) slot = std::make_unique<MemGauge>();
  return *slot;
}

std::vector<MemGaugeSample> mem_snapshot() {
  MemState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<MemGaugeSample> out;
  out.reserve(s.gauges.size());
  for (const auto& [name, g] : s.gauges)
    out.push_back({name, g->current(), g->peak()});
  return out;  // std::map iteration is already name-sorted
}

std::size_t registered_gauge_count() {
  MemState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.gauges.size();
}

void reset_mem_gauges() {
  MemState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& [name, g] : s.gauges) g->reset();
}

double fit_scaling_exponent(std::span<const double> n,
                            std::span<const double> bytes) {
  const std::size_t count = std::min(n.size(), bytes.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t valid = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (!(n[i] > 0.0) || !(bytes[i] > 0.0)) continue;
    const double x = std::log(n[i]);
    const double y = std::log(bytes[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++valid;
  }
  if (valid < 2) return 0.0;
  const double denom = valid * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;  // all sizes equal
  return (valid * sxy - sx * sy) / denom;
}

}  // namespace aeqp::obs
