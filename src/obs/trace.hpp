#pragma once

/// \file trace.hpp
/// Low-overhead span tracing for the whole engine (the measurement
/// substrate behind the paper's per-phase accounting). RAII spans recorded
/// into per-thread single-writer buffers:
///
///   AEQP_TRACE_SCOPE("cpscf/h");         // span over the enclosing scope
///   aeqp::obs::trace_instant("fault/kill");  // point event
///
/// Modes (env var AEQP_TRACE, read once on first use, overridable with
/// set_mode):
///   off      spans compile to a single relaxed atomic load -- no
///            allocation, no buffer registration, no event recorded.
///   summary  events recorded; the end-of-run phase report aggregates them.
///   full     additionally exportable as Chrome trace-event JSON
///            (chrome://tracing / Perfetto), one lane per rank x thread.
///
/// The flight recorder (obs/flight.hpp, AEQP_FLIGHT) shares this layer's
/// single gate atomic: spans and instants are captured into the per-thread
/// post-mortem ring when its bit is set, and a site where both layers are
/// off still costs exactly one relaxed atomic load.
///
/// The hot path is lock-free for the recording thread: each thread owns a
/// chunked buffer it alone appends to; the event count is published with a
/// release store so collectors (which run at quiescent points) only read
/// fully written slots. Chunks are never reallocated, so readers never see
/// a moving backing store. Tracing observes -- it never changes what a
/// computation does, preserving the bit-for-bit determinism contract of
/// docs/parallelism.md.
///
/// Span names must be string literals (or otherwise outlive the process):
/// events store the pointer, not a copy. Naming convention:
/// "phase/subphase" (see docs/observability.md).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace aeqp::obs {

enum class TraceMode { Off = 0, Summary = 1, Full = 2 };

namespace detail {
/// One combined gate for the trace and flight-recorder layers so a site
/// that feeds both (TraceScope, trace_instant) still costs exactly one
/// relaxed atomic load when everything is off. Bits 0-1 hold the
/// TraceMode, bit 2 the flight-recorder arm bit. -1 = not yet
/// initialized from the environment (AEQP_TRACE + AEQP_FLIGHT).
constexpr int kGateModeMask = 3;
constexpr int kGateFlight = 4;
extern std::atomic<int> g_gate;
/// Slow path of gate(): parse AEQP_TRACE and AEQP_FLIGHT once.
int init_gate_from_env();

[[nodiscard]] inline int gate() {
  const int g = g_gate.load(std::memory_order_relaxed);
  if (g >= 0) return g;
  return init_gate_from_env();
}
}  // namespace detail

/// Current trace mode (lazily initialized from AEQP_TRACE).
[[nodiscard]] inline TraceMode mode() {
  return static_cast<TraceMode>(detail::gate() & detail::kGateModeMask);
}

/// Programmatic override (tests, benches). Takes effect immediately for
/// spans opened afterwards. The flight-recorder bit is untouched.
void set_mode(TraceMode m);

[[nodiscard]] inline bool enabled() { return mode() != TraceMode::Off; }

/// Whether the flight recorder (obs/flight.hpp) is armed. Same single
/// gate load as mode().
[[nodiscard]] inline bool flight_enabled() {
  return (detail::gate() & detail::kGateFlight) != 0;
}

/// What one recorded event is.
enum class EventType : std::uint8_t { Begin, End, Instant };

/// One event as recorded (name is a borrowed static string).
struct TraceEvent {
  const char* name = nullptr;
  EventType type = EventType::Instant;
  int rank = -1;       ///< aeqp::thread_rank() at record time (-1 = host)
  double ts_us = 0.0;  ///< microseconds since the process trace epoch
};

/// Microseconds since the process-wide trace epoch (steady clock).
[[nodiscard]] double now_us();

/// Record a point event (fault fired, checkpoint written, ...). No-op when
/// tracing is off.
void trace_instant(const char* name);

namespace detail {
void record(const char* name, EventType type);
}  // namespace detail

/// RAII span. Construction records Begin, destruction End; both no-ops
/// (one relaxed atomic load, no allocation) when tracing is off. The mode
/// is latched at construction so a span closes even if the mode changes
/// mid-scope.
class TraceScope {
public:
  explicit TraceScope(const char* name) {
    if (detail::gate() == 0) return;  // neither tracing nor flight armed
    name_ = name;
    detail::record(name, EventType::Begin);
  }
  ~TraceScope() {
    if (name_ != nullptr) detail::record(name_, EventType::End);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

private:
  const char* name_ = nullptr;
};

/// Manually delimited span for phases whose outputs must outlive a braced
/// scope. begin() closes any span still open on this object, end() is
/// idempotent, and the destructor closes an open span.
class PhaseSpan {
public:
  PhaseSpan() = default;
  ~PhaseSpan() { end(); }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  void begin(const char* name) {
    end();
    if (detail::gate() == 0) return;
    name_ = name;
    detail::record(name, EventType::Begin);
  }
  void end() {
    if (name_ != nullptr) {
      detail::record(name_, EventType::End);
      name_ = nullptr;
    }
  }

private:
  const char* name_ = nullptr;
};

// --- Collection (quiescent points only: after joins / end of run) ---

/// One event with its source lane attached.
struct CollectedEvent {
  TraceEvent event;
  std::size_t thread_index = 0;  ///< buffer registration order (stable)
  std::size_t seq = 0;           ///< position within its buffer
};

/// A Begin/End pair matched within one thread's buffer.
struct CompletedSpan {
  const char* name = nullptr;
  int rank = -1;
  std::size_t thread_index = 0;
  int depth = 0;  ///< nesting depth within the lane (0 = top level)
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// Snapshot of every registered buffer, merged in the deterministic order
/// (thread_index, seq). Safe to call while other threads keep recording:
/// only events published before the call are returned.
[[nodiscard]] std::vector<CollectedEvent> collect_events();

/// Pair Begin/End events per lane into completed spans (ordered by
/// (thread_index, begin seq)); unmatched Begins are dropped. Instants are
/// returned separately by collect_events().
[[nodiscard]] std::vector<CompletedSpan> completed_spans();

/// Number of buffers ever registered (one per thread that recorded at
/// least one event). Exposed so tests can assert the disabled-mode path
/// allocates nothing.
[[nodiscard]] std::size_t registered_thread_count();

/// Events dropped because a buffer hit its capacity cap.
[[nodiscard]] std::size_t dropped_events();

/// Clear every buffer's events (buffers stay registered) and re-arm the
/// epoch offset. For tests and back-to-back profiled runs.
void reset();

}  // namespace aeqp::obs

#define AEQP_OBS_CONCAT2(a, b) a##b
#define AEQP_OBS_CONCAT(a, b) AEQP_OBS_CONCAT2(a, b)

/// Open a trace span covering the rest of the enclosing scope.
#define AEQP_TRACE_SCOPE(name) \
  const ::aeqp::obs::TraceScope AEQP_OBS_CONCAT(aeqp_trace_scope_, __LINE__)(name)
