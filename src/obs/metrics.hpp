#pragma once

/// \file metrics.hpp
/// Process-wide metrics registry: named monotonic counters plus pluggable
/// snapshot sources. The registry is what turns the repo's previously
/// isolated telemetry structs (simt::KernelStats, ParallelDfptStats,
/// FaultInjectorStats, RecoveryStats) into one queryable surface: each
/// owner registers a source callback that contributes (name, value) pairs
/// to a snapshot, and hot paths bump counters directly.
///
/// Counters are relaxed atomics -- cheap enough to stay on even when
/// tracing is off, and purely observational (they never feed back into a
/// computation, preserving determinism).

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace aeqp::obs {

/// One (name, value) pair of a metrics snapshot.
struct MetricSample {
  std::string name;
  double value = 0.0;
};

/// Callback contributing samples to a snapshot.
using MetricsFn = std::function<void(std::vector<MetricSample>&)>;

/// A monotonic counter. Obtain via obs::counter(name); references stay
/// valid for the process lifetime.
class Counter {
public:
  void add(std::uint64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  void increment() { add(1); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Look up (creating on first use) the process-wide counter `name`. The
/// lookup takes a mutex -- cache the reference on hot paths (function-local
/// static references are the intended idiom).
[[nodiscard]] Counter& counter(const std::string& name);

/// Register a snapshot source; returns an id for remove_source. The
/// callback runs whenever metrics_snapshot() is taken, so the referenced
/// data must outlive the registration.
std::size_t add_metrics_source(MetricsFn fn);
void remove_metrics_source(std::size_t id);

/// RAII registration of a snapshot source.
class ScopedMetricsSource {
public:
  ScopedMetricsSource() = default;
  explicit ScopedMetricsSource(MetricsFn fn)
      : id_(add_metrics_source(std::move(fn))), armed_(true) {}
  ~ScopedMetricsSource() { release(); }
  ScopedMetricsSource(ScopedMetricsSource&& o) noexcept
      : id_(o.id_), armed_(o.armed_) {
    o.armed_ = false;
  }
  ScopedMetricsSource& operator=(ScopedMetricsSource&& o) noexcept {
    if (this != &o) {
      release();
      id_ = o.id_;
      armed_ = o.armed_;
      o.armed_ = false;
    }
    return *this;
  }
  ScopedMetricsSource(const ScopedMetricsSource&) = delete;
  ScopedMetricsSource& operator=(const ScopedMetricsSource&) = delete;

private:
  void release() {
    if (armed_) remove_metrics_source(id_);
    armed_ = false;
  }
  std::size_t id_ = 0;
  bool armed_ = false;
};

/// All counters (nonzero ones) plus every registered source's samples,
/// sorted by name. Deterministic for a given registry state.
[[nodiscard]] std::vector<MetricSample> metrics_snapshot();

/// Zero every counter (sources are left registered). For tests/benches.
void reset_counters();

}  // namespace aeqp::obs
