#include "obs/flight.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/thread_ident.hpp"
#include "obs/metrics.hpp"

namespace aeqp::obs {

namespace {

constexpr std::size_t kSlots = 256;  ///< last-K window per thread

/// One ring slot: every field an atomic so dump-time readers racing the
/// owning writer are race-free. Relaxed stores, publication via the ring
/// head's release store.
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<int> rank{-1};
  std::atomic<double> ts_us{0.0};
  std::atomic<double> value{0.0};
};

class FlightRing {
public:
  explicit FlightRing(std::size_t lane) : lane_(lane) {}

  void push(const char* name, FlightKind kind, int rank, double ts_us,
            double value) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h % kSlots];
    s.name.store(name, std::memory_order_relaxed);
    s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
    s.rank.store(rank, std::memory_order_relaxed);
    s.ts_us.store(ts_us, std::memory_order_relaxed);
    s.value.store(value, std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
  }

  void snapshot(std::vector<FlightEvent>& out) const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t start = h > kSlots ? h - kSlots : 0;
    for (std::uint64_t seq = start; seq < h; ++seq) {
      const Slot& s = slots_[seq % kSlots];
      FlightEvent e;
      e.name = s.name.load(std::memory_order_relaxed);
      e.kind = static_cast<FlightKind>(s.kind.load(std::memory_order_relaxed));
      e.rank = s.rank.load(std::memory_order_relaxed);
      e.ts_us = s.ts_us.load(std::memory_order_relaxed);
      e.value = s.value.load(std::memory_order_relaxed);
      e.lane = lane_;
      e.seq = seq;
      if (e.name != nullptr) out.push_back(e);
    }
  }

  void clear() { head_.store(0, std::memory_order_release); }

private:
  std::size_t lane_;
  std::atomic<std::uint64_t> head_{0};
  std::array<Slot, kSlots> slots_;
};

struct FlightRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<FlightRing>> rings;
  std::mutex dump_mutex;  ///< serializes concurrent post-mortem writes
};

FlightRegistry& registry() {
  static FlightRegistry* r = new FlightRegistry();  // leaked: process lifetime
  return *r;
}

thread_local std::shared_ptr<FlightRing> tl_ring;

FlightRing& thread_ring() {
  if (!tl_ring) {
    FlightRegistry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    tl_ring = std::make_shared<FlightRing>(r.rings.size());
    r.rings.push_back(tl_ring);
  }
  return *tl_ring;
}

const char* kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::Begin: return "begin";
    case FlightKind::End: return "end";
    case FlightKind::Instant: return "instant";
    case FlightKind::Metric: return "metric";
    case FlightKind::Error: return "error";
  }
  return "unknown";
}

void append_escaped(std::ostringstream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << static_cast<char>(c);
        }
    }
  }
}

}  // namespace

namespace detail {

void flight_push(const TraceEvent& e) {
  FlightKind k = FlightKind::Instant;
  if (e.type == EventType::Begin) k = FlightKind::Begin;
  else if (e.type == EventType::End) k = FlightKind::End;
  thread_ring().push(e.name, k, e.rank, e.ts_us, 0.0);
}

}  // namespace detail

void flight_metric(const char* name, double delta) {
  if ((detail::gate() & detail::kGateFlight) == 0) return;
  thread_ring().push(name, FlightKind::Metric, thread_rank(), now_us(), delta);
}

std::vector<FlightEvent> flight_events() {
  std::vector<std::shared_ptr<FlightRing>> rings;
  {
    FlightRegistry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    rings = r.rings;
  }
  std::vector<FlightEvent> out;
  for (const auto& ring : rings) ring->snapshot(out);
  // snapshot() appends per ring in registration order, each in seq order,
  // so the merge is deterministic for a given recorded state.
  return out;
}

std::size_t flight_lane_count() {
  FlightRegistry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return r.rings.size();
}

std::string flight_json(const char* error_kind, const std::string& what) {
  std::ostringstream os;
  os << "{\n  \"schema_version\": 1,\n";
  os << "  \"error\": {\"kind\": \"";
  append_escaped(os, error_kind);
  os << "\", \"what\": \"";
  append_escaped(os, what.c_str());
  os << "\"},\n";
  os << "  \"events\": [";
  bool first = true;
  for (const FlightEvent& e : flight_events()) {
    os << (first ? "" : ",") << "\n    {\"lane\": " << e.lane
       << ", \"seq\": " << e.seq << ", \"name\": \"";
    append_escaped(os, e.name);
    os << "\", \"kind\": \"" << kind_name(e.kind) << "\", \"rank\": " << e.rank
       << ", \"ts_us\": " << e.ts_us << ", \"value\": " << e.value << "}";
    first = false;
  }
  if (!first) os << "\n  ";
  os << "],\n";
  os << "  \"metrics\": [";
  first = true;
  for (const MetricSample& m : metrics_snapshot()) {
    os << (first ? "" : ",") << "\n    {\"name\": \"";
    append_escaped(os, m.name.c_str());
    os << "\", \"value\": " << m.value << "}";
    first = false;
  }
  if (!first) os << "\n  ";
  os << "]\n}\n";
  return os.str();
}

void flight_on_error(const char* error_kind, const std::string& what) noexcept {
  try {
    if ((detail::gate() & detail::kGateFlight) == 0) return;
    thread_ring().push(error_kind, FlightKind::Error, thread_rank(), now_us(),
                       0.0);
    const std::string body = flight_json(error_kind, what);
    const char* env = std::getenv("AEQP_FLIGHT_FILE");
    const std::string path = (env != nullptr && *env != '\0') ? env
                                                              : "flight.json";
    {
      // Latest error wins, but two concurrent dumps must not interleave.
      FlightRegistry& r = registry();
      const std::lock_guard<std::mutex> lock(r.dump_mutex);
      if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
      }
    }
    static Counter& dumps = counter("flight/dumps");
    dumps.increment();
  } catch (...) {
    // Already on an error path; the post-mortem is best effort.
  }
}

std::uint64_t flight_dump_count() {
  static Counter& dumps = counter("flight/dumps");
  return dumps.value();
}

void reset_flight() {
  std::vector<std::shared_ptr<FlightRing>> rings;
  {
    FlightRegistry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    rings = r.rings;
  }
  for (const auto& ring : rings) ring->clear();
}

}  // namespace aeqp::obs
