#pragma once

/// \file lu.hpp
/// LU decomposition with partial pivoting for general square systems.
/// Used where matrices are not symmetric positive definite, e.g. the
/// bordered Lagrange system of the Pulay/DIIS mixer.

#include "linalg/matrix.hpp"

namespace aeqp::linalg {

/// PA = LU factorization with partial pivoting.
class LuDecomposition {
public:
  /// Factor a square matrix; throws aeqp::Error if singular to working
  /// precision.
  explicit LuDecomposition(Matrix a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Determinant of A (including the permutation sign).
  [[nodiscard]] double determinant() const;

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  double perm_sign_ = 1.0;
};

/// One-shot convenience: solve A x = b by LU.
Vector solve_linear(const Matrix& a, const Vector& b);

}  // namespace aeqp::linalg
