#pragma once

/// \file sparse.hpp
/// Compressed sparse row (CSR) matrix.
///
/// The paper's scaling obstacle (Sec. 3.1.1) is a large *sparse* Hamiltonian
/// kept per process under the legacy load-balancing mapping: fetching one
/// element requires several dependent memory accesses (row pointer, column
/// search, value). This class reproduces exactly that storage format and its
/// access cost so the Fig. 9 experiments compare it against local dense
/// blocks for real.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace aeqp::linalg {

/// One (row, col, value) entry used to assemble a CSR matrix.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Immutable CSR matrix; duplicate triplets are summed at build time.
class CsrMatrix {
public:
  CsrMatrix() = default;

  /// Assemble from triplets (any order, duplicates summed).
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// Element lookup via binary search within the row — the "at least 3
  /// memory accesses" path from Fig. 3(a). Returns 0 for structural zeros.
  [[nodiscard]] double fetch(std::size_t i, std::size_t j) const;

  /// y = A x.
  [[nodiscard]] Vector matvec(const Vector& x) const;

  /// Dense copy (small matrices / tests).
  [[nodiscard]] Matrix to_dense() const;

  /// Extract the dense block A[rows x cols] for the given index subsets.
  [[nodiscard]] Matrix gather_block(const std::vector<std::size_t>& row_ids,
                                    const std::vector<std::size_t>& col_ids) const;

  /// Payload bytes: values + column indices + row pointers. This is the
  /// number the Fig. 9(a) memory experiment reports for the legacy mapping.
  [[nodiscard]] std::size_t bytes() const;

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<std::uint32_t>& col_idx() const { return col_idx_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace aeqp::linalg
