#pragma once

/// \file cholesky.hpp
/// Cholesky factorization and triangular solves, used to reduce the
/// generalized symmetric-definite eigenproblem H C = eps S C to standard
/// form, and by the Pulay mixer's normal equations.

#include "linalg/matrix.hpp"

namespace aeqp::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T.
/// Throws aeqp::Error if A is not (numerically) positive definite.
Matrix cholesky(const Matrix& a);

/// Solve L y = b for lower-triangular L (forward substitution).
Vector solve_lower(const Matrix& l, const Vector& b);

/// Solve L^T x = y for lower-triangular L (back substitution on transpose).
Vector solve_lower_transposed(const Matrix& l, const Vector& y);

/// Solve A x = b for symmetric positive definite A via Cholesky.
Vector solve_spd(const Matrix& a, const Vector& b);

/// Inverse of a lower-triangular matrix.
Matrix invert_lower(const Matrix& l);

}  // namespace aeqp::linalg
