#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aeqp::linalg {

Matrix cholesky(const Matrix& a) {
  AEQP_CHECK(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    AEQP_CHECK(diag > 0.0, "cholesky: matrix is not positive definite");
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

Vector solve_lower(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  AEQP_CHECK(b.size() == n, "solve_lower shape mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  return y;
}

Vector solve_lower_transposed(const Matrix& l, const Vector& y) {
  const std::size_t n = l.rows();
  AEQP_CHECK(y.size() == n, "solve_lower_transposed shape mismatch");
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

Vector solve_spd(const Matrix& a, const Vector& b) {
  const Matrix l = cholesky(a);
  return solve_lower_transposed(l, solve_lower(l, b));
}

Matrix invert_lower(const Matrix& l) {
  const std::size_t n = l.rows();
  AEQP_CHECK(l.cols() == n, "invert_lower requires a square matrix");
  Matrix inv(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    inv(j, j) = 1.0 / l(j, j);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = 0.0;
      for (std::size_t k = j; k < i; ++k) s += l(i, k) * inv(k, j);
      inv(i, j) = -s / l(i, i);
    }
  }
  return inv;
}

}  // namespace aeqp::linalg
