#pragma once

/// \file eigen.hpp
/// Symmetric and generalized symmetric-definite eigensolvers.
///
/// The Kohn–Sham equations in a non-orthogonal atomic-orbital basis are the
/// generalized problem H C = eps S C (paper Eq. 5). We reduce it to standard
/// form with the Cholesky factor of S, then run Householder tridiagonal
/// reduction followed by the implicit-shift QL iteration. Basis dimensions
/// per process are small (<= a few thousand), so the O(n^3) dense path is
/// appropriate.

#include "linalg/matrix.hpp"

namespace aeqp::linalg {

/// Result of a (generalized) symmetric eigendecomposition.
/// Eigenvalues ascend; eigenvectors() column p pairs with eigenvalue p.
struct EigenSolution {
  Vector eigenvalues;
  Matrix eigenvectors;  ///< column-major pairing: vector p is column p
};

/// Full eigendecomposition of a symmetric matrix (symmetry is assumed; only
/// the lower triangle strictly needs to be valid but callers pass symmetric
/// data). Throws on iteration failure (pathological input).
EigenSolution symmetric_eigen(const Matrix& a);

/// Generalized problem H C = eps S C with S symmetric positive definite.
/// Returned eigenvectors are S-orthonormal: C^T S C = I.
EigenSolution generalized_symmetric_eigen(const Matrix& h, const Matrix& s);

}  // namespace aeqp::linalg
