#pragma once

/// \file abft.hpp
/// Algorithm-based fault tolerance (Huang-Abraham checksums) for the matmul
/// kernels that dominate the DM-build and Sternheimer paths. The product
/// C = A*B satisfies two exact linear identities:
///
///   row sums:    C * e = A * (B * e)
///   column sums: e^T * C = (e^T * A) * B
///
/// both computable in O(n^2) against the O(n^3) product. A single corrupted
/// element C(i,j) shows up as a matching residual in row i and column j;
/// the intersection locates it, and recomputing that one dot product (in
/// the kernel's exact accumulation order) restores the bit-exact value.
/// Multi-element corruption beyond one row/column pair is detected but not
/// correctable; detect-only mode never mutates and always throws on
/// detection, letting the caller choose recompute-vs-rollback.
///
/// Fault-free, abft_matmul returns exactly matmul(a, b) -- the checksums
/// only read -- so the bit-for-bit determinism contract of
/// docs/parallelism.md is preserved. The verified product is probed via
/// resilience::sdc_probe *before* verification, so a planted compute-site
/// fault exercises the same detect -> locate -> correct path a real upset
/// would.

#include <cstddef>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace aeqp::linalg {

enum class AbftMode {
  DetectOnly,      ///< throw AbftError on any detected corruption
  CorrectInPlace,  ///< single-element: locate + exact recompute; else throw
};

/// Thrown when a checksum violation cannot be (or must not be) corrected.
/// Carries the site so the recovery ladder can account the escalation.
class AbftError : public Error {
public:
  AbftError(const std::string& site, const std::string& what)
      : Error("ABFT: " + what + " at " + site), site_(site) {}
  [[nodiscard]] const std::string& site() const noexcept { return site_; }

private:
  std::string site_;
};

/// Counters of what the ABFT layer observed (process-wide, cumulative;
/// reset with reset_abft_stats). Updated via relaxed atomics internally.
struct AbftStats {
  std::size_t checks = 0;         ///< verified products
  std::size_t detections = 0;     ///< products with a checksum violation
  std::size_t corrections = 0;    ///< single-element corruptions fixed
  std::size_t uncorrectable = 0;  ///< violations escalated to the caller
};

[[nodiscard]] AbftStats abft_stats();
void reset_abft_stats();

/// Scoped ABFT accounting for long-lived multi-tenant processes: the
/// process-wide AbftStats accumulate across every job a solve server runs,
/// so "delta the global counters" mis-attributes work the moment two jobs
/// overlap. An AbftStatsScope opens a private accumulator on the
/// constructing thread (via the common/task_scope.hpp context, which simmpi
/// rank threads inherit), so stats() reports exactly the checks/detections/
/// corrections performed on behalf of this scope -- including work done on
/// rank threads the scope's task spawned, and excluding every concurrent
/// sibling. Scopes nest: an inner scope (e.g. a RecoveryDriver attempt)
/// also credits its enclosing scope (the owning service job). The global
/// counters keep accumulating unchanged.
class AbftStatsScope {
public:
  AbftStatsScope();
  ~AbftStatsScope();
  AbftStatsScope(const AbftStatsScope&) = delete;
  AbftStatsScope& operator=(const AbftStatsScope&) = delete;

  /// Counts observed while this scope has been active (live; callable
  /// before destruction and from the owning thread at any time).
  [[nodiscard]] AbftStats stats() const;

  struct Slot;  ///< opaque accumulator (defined in abft.cpp)

private:
  std::unique_ptr<Slot> slot_;
  void* prev_scope_ = nullptr;
};

/// C = A * B with checksum verification of the product. `site` (a static
/// string) names the call site in probes, traces, and errors.
[[nodiscard]] Matrix abft_matmul(const Matrix& a, const Matrix& b,
                                 const char* site,
                                 AbftMode mode = AbftMode::CorrectInPlace);

/// C = A^T * B with checksum verification of the product.
[[nodiscard]] Matrix abft_matmul_tn(const Matrix& a, const Matrix& b,
                                    const char* site,
                                    AbftMode mode = AbftMode::CorrectInPlace);

}  // namespace aeqp::linalg
