#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace aeqp::linalg {

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  AEQP_CHECK(lu_.rows() == lu_.cols(), "LuDecomposition: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), 0u);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |a_ik| on or below the diagonal.
    std::size_t piv = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    AEQP_CHECK(best > 1e-300, "LuDecomposition: matrix is singular");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
      perm_sign_ = -perm_sign_;
    }
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) * inv;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  AEQP_CHECK(b.size() == n, "LuDecomposition::solve: size mismatch");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution with unit-diagonal L.
  for (std::size_t i = 1; i < n; ++i) {
    double s = x[i];
    for (std::size_t k = 0; k < i; ++k) s -= lu_(i, k) * x[k];
    x[i] = s;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= lu_(ii, k) * x[k];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

double LuDecomposition::determinant() const {
  double d = perm_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

Vector solve_linear(const Matrix& a, const Vector& b) {
  return LuDecomposition(a).solve(b);
}

}  // namespace aeqp::linalg
