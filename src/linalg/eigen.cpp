#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "linalg/cholesky.hpp"

namespace aeqp::linalg {
namespace {

double pythag(double a, double b) {
  const double absa = std::fabs(a), absb = std::fabs(b);
  if (absa > absb) {
    const double r = absb / absa;
    return absa * std::sqrt(1.0 + r * r);
  }
  if (absb == 0.0) return 0.0;
  const double r = absa / absb;
  return absb * std::sqrt(1.0 + r * r);
}

double sign_of(double a, double b) { return b >= 0.0 ? std::fabs(a) : -std::fabs(a); }

/// Householder reduction of symmetric z to tridiagonal form (tred2),
/// accumulating the orthogonal transform in z.
void tridiagonalize(Matrix& z, Vector& d, Vector& e) {
  const std::size_t n = z.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 0) return;

  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0, scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k) z(j, k) -= f * e[k] + g * z(i, k);
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += z(i, k) * z(k, j);
        for (std::size_t k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) z(j, i) = z(i, j) = 0.0;
  }
}

/// Implicit-shift QL iteration on a tridiagonal matrix (tqli), rotating the
/// accumulated transform z along.
void ql_implicit(Vector& d, Vector& e, Matrix& z) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        AEQP_CHECK(iter++ < 64, "symmetric_eigen: QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        for (std::size_t ii = m; ii-- > l;) {
          double f = s * e[ii];
          const double b = c * e[ii];
          r = pythag(f, g);
          e[ii + 1] = r;
          if (r == 0.0) {
            d[ii + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[ii + 1] - p;
          r = (d[ii] - g) * s + 2.0 * c * b;
          p = s * r;
          d[ii + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, ii + 1);
            z(k, ii + 1) = s * z(k, ii) + c * f;
            z(k, ii) = c * z(k, ii) - s * f;
          }
        }
        if (r == 0.0 && e[m] == 0.0 && m > l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

void sort_ascending(EigenSolution& sol) {
  const std::size_t n = sol.eigenvalues.size();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    return sol.eigenvalues[a] < sol.eigenvalues[b];
  });
  Vector w(n);
  Matrix v(n, n);
  for (std::size_t p = 0; p < n; ++p) {
    w[p] = sol.eigenvalues[perm[p]];
    for (std::size_t k = 0; k < n; ++k) v(k, p) = sol.eigenvectors(k, perm[p]);
  }
  sol.eigenvalues = std::move(w);
  sol.eigenvectors = std::move(v);
}

}  // namespace

EigenSolution symmetric_eigen(const Matrix& a) {
  AEQP_CHECK(a.rows() == a.cols(), "symmetric_eigen requires a square matrix");
  EigenSolution sol;
  sol.eigenvectors = a;
  Vector d, e;
  tridiagonalize(sol.eigenvectors, d, e);
  ql_implicit(d, e, sol.eigenvectors);
  sol.eigenvalues = std::move(d);
  sort_ascending(sol);
  return sol;
}

EigenSolution generalized_symmetric_eigen(const Matrix& h, const Matrix& s) {
  AEQP_CHECK(h.rows() == h.cols() && s.rows() == s.cols() && h.rows() == s.rows(),
             "generalized_symmetric_eigen shape mismatch");
  // Reduce to standard form: A = L^-1 H L^-T with S = L L^T.
  const Matrix l = cholesky(s);
  const Matrix linv = invert_lower(l);
  Matrix a = matmul_nt(matmul(linv, h), linv);
  a.symmetrize();  // remove round-off asymmetry before QL
  EigenSolution sol = symmetric_eigen(a);
  // Back-transform eigenvectors: C = L^-T Y.
  sol.eigenvectors = matmul_tn(linv, sol.eigenvectors);
  return sol;
}

}  // namespace aeqp::linalg
