#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "exec/thread_pool.hpp"

namespace aeqp::linalg {

namespace {
/// Below this many multiply-adds a matmul runs serially; the pool hand-off
/// costs more than it saves on the small DIIS/Sternheimer systems.
constexpr std::size_t kParallelFlopCutoff = 1u << 18;

/// Rows per scheduling block for the pool-parallel products. Each block of
/// output rows is owned by exactly one worker, so the per-element
/// accumulation order never depends on the thread count.
constexpr std::size_t kRowBlock = 8;
}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::axpy(double alpha, const Matrix& other) {
  AEQP_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "axpy shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::scale(double alpha) {
  for (auto& v : data_) v *= alpha;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

void Matrix::symmetrize() {
  AEQP_CHECK(rows_ == cols_, "symmetrize requires a square matrix");
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j) {
      const double avg = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = avg;
      (*this)(j, i) = avg;
    }
}

double Matrix::max_abs_diff(const Matrix& other) const {
  AEQP_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  return m;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::trace() const {
  AEQP_CHECK(rows_ == cols_, "trace requires a square matrix");
  double s = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  AEQP_CHECK(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix c(a.rows(), b.cols());
  const std::size_t work = a.rows() * a.cols() * b.cols();
  const std::size_t grain = work >= kParallelFlopCutoff ? kRowBlock : a.rows();
  exec::parallel_for_ranges(
      0, a.rows(), std::max<std::size_t>(grain, 1),
      [&](std::size_t ib, std::size_t ie) {
        for (std::size_t i = ib; i < ie; ++i)
          for (std::size_t k = 0; k < a.cols(); ++k) {
            const double aik = a(i, k);
            if (aik == 0.0) continue;
            const double* brow = b.data() + k * b.cols();
            double* crow = c.data() + i * c.cols();
            for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
          }
      });
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  AEQP_CHECK(a.rows() == b.rows(), "matmul_tn shape mismatch");
  Matrix c(a.cols(), b.cols());
  const std::size_t work = a.rows() * a.cols() * b.cols();
  const std::size_t grain = work >= kParallelFlopCutoff ? kRowBlock : a.cols();
  // Output-row-major order (each C row walks k ascending) so row blocks are
  // independent; the k accumulation order per element matches the serial
  // k-outer loop exactly.
  exec::parallel_for_ranges(
      0, a.cols(), std::max<std::size_t>(grain, 1),
      [&](std::size_t ib, std::size_t ie) {
        for (std::size_t i = ib; i < ie; ++i) {
          double* crow = c.data() + i * c.cols();
          for (std::size_t k = 0; k < a.rows(); ++k) {
            const double aki = a(k, i);
            if (aki == 0.0) continue;
            const double* brow = b.data() + k * b.cols();
            for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
          }
        }
      });
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  AEQP_CHECK(a.cols() == b.cols(), "matmul_nt shape mismatch");
  Matrix c(a.rows(), b.rows());
  const std::size_t work = a.rows() * a.cols() * b.rows();
  const std::size_t grain = work >= kParallelFlopCutoff ? kRowBlock : a.rows();
  exec::parallel_for_ranges(
      0, a.rows(), std::max<std::size_t>(grain, 1),
      [&](std::size_t ib, std::size_t ie) {
        for (std::size_t i = ib; i < ie; ++i)
          for (std::size_t j = 0; j < b.rows(); ++j)
            c(i, j) = dot(a.row(i), b.row(j));
      });
  return c;
}

Vector matvec(const Matrix& a, const Vector& x) {
  AEQP_CHECK(a.cols() == x.size(), "matvec shape mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = dot(a.row(i), x);
  return y;
}

Vector matvec_t(const Matrix& a, const Vector& x) {
  AEQP_CHECK(a.rows() == x.size(), "matvec_t shape mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* arow = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * arow[j];
  }
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  AEQP_ASSERT(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double trace_product(const Matrix& a, const Matrix& b) {
  AEQP_CHECK(a.rows() == b.cols() && a.cols() == b.rows(), "trace_product shape");
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * b(j, i);
  return s;
}

}  // namespace aeqp::linalg
