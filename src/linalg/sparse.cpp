#include "linalg/sparse.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace aeqp::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const auto& t : triplets)
    AEQP_CHECK(t.row < rows && t.col < cols, "CsrMatrix: triplet out of range");
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  row_ptr_.assign(rows + 1, 0);
  col_idx_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (std::size_t k = 0; k < triplets.size();) {
    const std::size_t r = triplets[k].row, c = triplets[k].col;
    double sum = 0.0;
    while (k < triplets.size() && triplets[k].row == r && triplets[k].col == c)
      sum += triplets[k++].value;
    col_idx_.push_back(static_cast<std::uint32_t>(c));
    values_.push_back(sum);
    row_ptr_[r + 1] = values_.size();
  }
  // Rows with no entries inherit the previous row's end offset.
  for (std::size_t r = 1; r <= rows; ++r)
    row_ptr_[r] = std::max(row_ptr_[r], row_ptr_[r - 1]);
}

double CsrMatrix::fetch(std::size_t i, std::size_t j) const {
  AEQP_ASSERT(i < rows_ && j < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(j));
  if (it == end || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector CsrMatrix::matvec(const Vector& x) const {
  AEQP_CHECK(x.size() == cols_, "CsrMatrix::matvec shape mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      s += values_[k] * x[col_idx_[k]];
    y[i] = s;
  }
  return y;
}

Matrix CsrMatrix::to_dense() const {
  Matrix d(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      d(i, col_idx_[k]) = values_[k];
  return d;
}

Matrix CsrMatrix::gather_block(const std::vector<std::size_t>& row_ids,
                               const std::vector<std::size_t>& col_ids) const {
  Matrix block(row_ids.size(), col_ids.size());
  for (std::size_t bi = 0; bi < row_ids.size(); ++bi)
    for (std::size_t bj = 0; bj < col_ids.size(); ++bj)
      block(bi, bj) = fetch(row_ids[bi], col_ids[bj]);
  return block;
}

std::size_t CsrMatrix::bytes() const {
  return values_.size() * sizeof(double) + col_idx_.size() * sizeof(std::uint32_t) +
         row_ptr_.size() * sizeof(std::size_t);
}

}  // namespace aeqp::linalg
