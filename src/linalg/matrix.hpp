#pragma once

/// \file matrix.hpp
/// Dense row-major matrix and the small set of BLAS-like operations AEQP
/// needs. Sizes in this library are modest (basis dimensions of a few
/// thousand at most per process), so clarity wins over blocking tricks;
/// the inner loops are still written cache-friendly (ikj order).

#include <cstddef>
#include <span>
#include <vector>

namespace aeqp::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// n-by-n identity.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  const double& operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] std::span<double> row(std::size_t i) {
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }

  /// Set every element to v.
  void fill(double v);

  /// this += alpha * other (same shape required).
  void axpy(double alpha, const Matrix& other);

  /// Scale all elements.
  void scale(double alpha);

  /// Transposed copy.
  [[nodiscard]] Matrix transposed() const;

  /// (this + this^T) / 2, for cleaning up numerically asymmetric integrals.
  void symmetrize();

  /// Max |a_ij - b_ij| over all elements; shapes must match.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  /// Max |a_ij|.
  [[nodiscard]] double max_abs() const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Sum_i a_ii (square only).
  [[nodiscard]] double trace() const;

  /// Bytes of payload held (used by the memory-model experiments).
  [[nodiscard]] std::size_t bytes() const { return data_.size() * sizeof(double); }

private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B.
Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// C = A * B^T.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// y = A * x.
Vector matvec(const Matrix& a, const Vector& x);

/// y = A^T * x.
Vector matvec_t(const Matrix& a, const Vector& x);

/// Dot product of equally sized vectors.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> a);

/// tr(A * B) for equally-shaped square matrices (uses A_ij * B_ji).
double trace_product(const Matrix& a, const Matrix& b);

}  // namespace aeqp::linalg
