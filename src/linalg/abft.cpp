#include "linalg/abft.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/task_scope.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/sdc_inject.hpp"

namespace aeqp::linalg {

/// Per-scope accumulator, linked to its enclosing scope so nested scopes
/// (service job -> RecoveryDriver attempt) both see the counts. Installed
/// as the thread's opaque task scope; rank threads inherit the pointer, so
/// fields are atomics (ranks bump concurrently).
struct AbftStatsScope::Slot {
  std::atomic<std::size_t> checks{0};
  std::atomic<std::size_t> detections{0};
  std::atomic<std::size_t> corrections{0};
  std::atomic<std::size_t> uncorrectable{0};
  Slot* parent = nullptr;
};

namespace {

std::atomic<std::size_t> g_checks{0};
std::atomic<std::size_t> g_detections{0};
std::atomic<std::size_t> g_corrections{0};
std::atomic<std::size_t> g_uncorrectable{0};

/// Bump a counter globally and in every scope enclosing the calling thread.
void bump(std::atomic<std::size_t>& global,
          std::atomic<std::size_t> AbftStatsScope::Slot::*field) {
  global.fetch_add(1, std::memory_order_relaxed);
  for (auto* s = static_cast<AbftStatsScope::Slot*>(task_scope()); s != nullptr;
       s = s->parent)
    (s->*field).fetch_add(1, std::memory_order_relaxed);
}

/// Checksum tolerance for C of inner dimension k, outer extent n: the
/// row/column sums accumulate k*n products of magnitude <= max|A| max|B|,
/// so roundoff scales with k*n*eps; the factor 1024 gives generous margin
/// against accumulation-order differences without eating into the orders
/// of magnitude a high-bit flip produces.
double checksum_tolerance(std::size_t k, std::size_t n, double max_a,
                          double max_b) {
  const double eps = std::numeric_limits<double>::epsilon();
  return 1024.0 * eps * static_cast<double>(k) * static_cast<double>(n) *
         std::max(max_a * max_b, 1e-300);
}

/// Exact recomputation of C(i,j) in the kernel's accumulation order
/// (k ascending, zero-skip), so a located corruption restores bit-exact.
double recompute_element(const Matrix& a, const Matrix& b, std::size_t i,
                         std::size_t j, bool a_transposed) {
  double c = 0.0;
  const std::size_t kk = a_transposed ? a.rows() : a.cols();
  for (std::size_t k = 0; k < kk; ++k) {
    const double av = a_transposed ? a(k, i) : a(i, k);
    if (av == 0.0) continue;
    c += av * b(k, j);
  }
  return c;
}

/// Verify C against the Huang-Abraham identities and, in CorrectInPlace
/// mode, repair a single located corruption. Throws AbftError on anything
/// it cannot fix. `a_transposed` selects the C = A^T B variant.
void verify_product(const Matrix& a, const Matrix& b, Matrix& c,
                    bool a_transposed, const char* site, AbftMode mode) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t kk = a_transposed ? a.rows() : a.cols();

  // Reference checksum vectors from the *inputs* (O(n^2)):
  //   expected row sums:    A   * (B * e)
  //   expected column sums: (e^T A) * B
  std::vector<double> b_rowsum(kk, 0.0);
  for (std::size_t k = 0; k < kk; ++k) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += b(k, j);
    b_rowsum[k] = s;
  }
  std::vector<double> a_colsum(kk, 0.0);  // over C's row index
  for (std::size_t k = 0; k < kk; ++k) {
    double s = 0.0;
    for (std::size_t i = 0; i < m; ++i) s += a_transposed ? a(k, i) : a(i, k);
    a_colsum[k] = s;
  }

  const double tau = checksum_tolerance(kk, std::max(m, n), a.max_abs(),
                                        b.max_abs());

  // Residuals of the actual product against the references. A NaN/Inf in C
  // poisons its row and column sums, failing the <= comparison, so
  // non-finite corruption is flagged by the same test as a numeric delta.
  std::vector<std::size_t> bad_rows, bad_cols;
  for (std::size_t i = 0; i < m; ++i) {
    double actual = 0.0, expected = 0.0;
    for (std::size_t j = 0; j < n; ++j) actual += c(i, j);
    for (std::size_t k = 0; k < kk; ++k)
      expected += (a_transposed ? a(k, i) : a(i, k)) * b_rowsum[k];
    const double r = actual - expected;
    if (!(std::fabs(r) <= tau)) bad_rows.push_back(i);
  }
  for (std::size_t j = 0; j < n; ++j) {
    double actual = 0.0, expected = 0.0;
    for (std::size_t i = 0; i < m; ++i) actual += c(i, j);
    for (std::size_t k = 0; k < kk; ++k) expected += a_colsum[k] * b(k, j);
    const double r = actual - expected;
    if (!(std::fabs(r) <= tau)) bad_cols.push_back(j);
  }

  bump(g_checks, &AbftStatsScope::Slot::checks);
  {
    static obs::Counter& checks = obs::counter("abft/checks");
    checks.increment();
  }
  if (bad_rows.empty() && bad_cols.empty()) return;

  bump(g_detections, &AbftStatsScope::Slot::detections);
  obs::counter("abft/detections").increment();
  obs::trace_instant("sdc/detect");

  const bool single = bad_rows.size() == 1 && bad_cols.size() == 1;
  if (mode == AbftMode::CorrectInPlace && single) {
    const std::size_t i0 = bad_rows.front();
    const std::size_t j0 = bad_cols.front();
    c(i0, j0) = recompute_element(a, b, i0, j0, a_transposed);
    bump(g_corrections, &AbftStatsScope::Slot::corrections);
    obs::counter("abft/corrections").increment();
    obs::trace_instant("sdc/correct");
    return;
  }

  bump(g_uncorrectable, &AbftStatsScope::Slot::uncorrectable);
  obs::counter("abft/uncorrectable").increment();
  const std::string what =
      mode == AbftMode::DetectOnly
          ? ("checksum violation detected (" +
             std::to_string(bad_rows.size()) + " rows, " +
             std::to_string(bad_cols.size()) + " cols)")
          : ("uncorrectable corruption (" + std::to_string(bad_rows.size()) +
             " rows, " + std::to_string(bad_cols.size()) + " cols affected)");
  throw AbftError(site, what);
}

}  // namespace

AbftStats abft_stats() {
  AbftStats s;
  s.checks = g_checks.load(std::memory_order_relaxed);
  s.detections = g_detections.load(std::memory_order_relaxed);
  s.corrections = g_corrections.load(std::memory_order_relaxed);
  s.uncorrectable = g_uncorrectable.load(std::memory_order_relaxed);
  return s;
}

void reset_abft_stats() {
  g_checks.store(0, std::memory_order_relaxed);
  g_detections.store(0, std::memory_order_relaxed);
  g_corrections.store(0, std::memory_order_relaxed);
  g_uncorrectable.store(0, std::memory_order_relaxed);
}

AbftStatsScope::AbftStatsScope()
    : slot_(std::make_unique<Slot>()), prev_scope_(task_scope()) {
  slot_->parent = static_cast<Slot*>(prev_scope_);
  set_task_scope(slot_.get());
}

AbftStatsScope::~AbftStatsScope() { set_task_scope(prev_scope_); }

AbftStats AbftStatsScope::stats() const {
  AbftStats s;
  s.checks = slot_->checks.load(std::memory_order_relaxed);
  s.detections = slot_->detections.load(std::memory_order_relaxed);
  s.corrections = slot_->corrections.load(std::memory_order_relaxed);
  s.uncorrectable = slot_->uncorrectable.load(std::memory_order_relaxed);
  return s;
}

Matrix abft_matmul(const Matrix& a, const Matrix& b, const char* site,
                   AbftMode mode) {
  Matrix c = matmul(a, b);
  resilience::sdc_probe(site, {c.data(), c.rows() * c.cols()});
  verify_product(a, b, c, /*a_transposed=*/false, site, mode);
  return c;
}

Matrix abft_matmul_tn(const Matrix& a, const Matrix& b, const char* site,
                      AbftMode mode) {
  Matrix c = matmul_tn(a, b);
  resilience::sdc_probe(site, {c.data(), c.rows() * c.cols()});
  verify_product(a, b, c, /*a_transposed=*/true, site, mode);
  return c;
}

}  // namespace aeqp::linalg
